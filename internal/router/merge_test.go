package router

import (
	"reflect"
	"testing"

	"focus/internal/plan"
	"focus/internal/serve"
	"focus/internal/simrand"
	"focus/internal/video"
)

func TestMergeQueryResponsesAggregates(t *testing.T) {
	parts := []*serve.QueryResponse{
		{Streams: map[string]*serve.StreamQueryResult{
			"b": {Frames: []int64{4, 5}, GPUTimeMS: 2.5, LatencyMS: 9},
			"c": {Frames: []int64{6}, GPUTimeMS: 1.25, LatencyMS: 3},
		}, Cached: true},
		{Streams: map[string]*serve.StreamQueryResult{
			"a": {Frames: []int64{1, 2, 3}, GPUTimeMS: 0.5, LatencyMS: 7},
		}, Cached: false},
	}
	out, err := mergeQueryResponses("car", parts)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalFrames != 6 {
		t.Fatalf("TotalFrames = %d, want 6", out.TotalFrames)
	}
	// Sum order mirrors a direct query: sorted stream names, not shard
	// arrival order.
	if want := 0.5 + 2.5 + 1.25; out.GPUTimeMS != want {
		t.Fatalf("GPUTimeMS = %g, want %g", out.GPUTimeMS, want)
	}
	if out.LatencyMS != 9 {
		t.Fatalf("LatencyMS = %g, want max 9", out.LatencyMS)
	}
	if out.Cached {
		t.Fatal("merged response claims cached although one shard missed")
	}
	if len(out.Streams) != 3 {
		t.Fatalf("merged %d streams, want 3", len(out.Streams))
	}
}

func TestMergeQueryResponsesRejectsDuplicateStream(t *testing.T) {
	parts := []*serve.QueryResponse{
		{Streams: map[string]*serve.StreamQueryResult{"a": {}}},
		{Streams: map[string]*serve.StreamQueryResult{"a": {}}},
	}
	if _, err := mergeQueryResponses("car", parts); err == nil {
		t.Fatal("expected an error for a stream answered by two shards")
	}
}

// itemRanksBefore must agree with plan.RankBefore on every pair — the
// router's merge order IS the single-node emission order.
func TestItemOrderMatchesPlanRankBefore(t *testing.T) {
	src := simrand.New(7).DeriveN(0, "merge-order")
	items := make([]serve.PlanItem, 200)
	for i := range items {
		items[i] = serve.PlanItem{
			Stream: []string{"a", "b", "c"}[src.Intn(3)],
			Frame:  int64(src.Intn(50)),
			// Coarse scores force plenty of ties through the stream/frame
			// tie-breakers.
			Score: float64(src.Intn(4)),
		}
	}
	for i := range items {
		for j := range items {
			a, b := items[i], items[j]
			pa := plan.Item{Stream: a.Stream, Frame: video.FrameID(a.Frame), Score: a.Score}
			pb := plan.Item{Stream: b.Stream, Frame: video.FrameID(b.Frame), Score: b.Score}
			if itemRanksBefore(a, b) != plan.RankBefore(pa, pb) {
				t.Fatalf("order disagreement for %+v vs %+v", a, b)
			}
		}
	}
}

func TestMergePlanResponsesTopKAndOrder(t *testing.T) {
	req := &serve.PlanRequest{Expr: "car & person", TopK: 3}
	parts := []*serve.PlanResponse{
		{
			Expr: "car & person",
			Items: []serve.PlanItem{
				{Stream: "a", Frame: 1, Score: 5},
				{Stream: "a", Frame: 9, Score: 2},
			},
			TotalItems:   2,
			Watermarks:   map[string]float64{"a": 30},
			GTInferences: 4, GPUTimeMS: 2, LatencyMS: 10,
			Cached: true,
		},
		{
			Expr: "car & person",
			Items: []serve.PlanItem{
				{Stream: "b", Frame: 2, Score: 7},
				{Stream: "b", Frame: 3, Score: 2},
			},
			TotalItems:   2,
			Watermarks:   map[string]float64{"b": 25},
			GTInferences: 6, GPUTimeMS: 3, LatencyMS: 8,
			Cached: true,
		},
	}
	out, err := mergePlanResponses(req, parts)
	if err != nil {
		t.Fatal(err)
	}
	want := []serve.PlanItem{
		{Stream: "b", Frame: 2, Score: 7},
		{Stream: "a", Frame: 1, Score: 5},
		// Score tie at 2: stream "a" ranks before "b".
		{Stream: "a", Frame: 9, Score: 2},
	}
	if !reflect.DeepEqual(out.Items, want) {
		t.Fatalf("merged items %+v, want %+v", out.Items, want)
	}
	if out.TotalItems != 3 {
		t.Fatalf("TotalItems = %d, want 3 (TopK)", out.TotalItems)
	}
	if out.GTInferences != 10 || out.GPUTimeMS != 5 || out.LatencyMS != 10 {
		t.Fatalf("cost merge wrong: %+v", out)
	}
	if !out.Cached {
		t.Fatal("all shards cached; merged response should be cached")
	}
	if out.Watermarks["a"] != 30 || out.Watermarks["b"] != 25 {
		t.Fatalf("watermark union wrong: %v", out.Watermarks)
	}
}

func TestMergePlanResponsesFailsLoudly(t *testing.T) {
	req := &serve.PlanRequest{Expr: "car"}
	if _, err := mergePlanResponses(req, []*serve.PlanResponse{
		{Expr: "car"}, {Expr: "car & person"},
	}); err == nil {
		t.Fatal("expected an error for disagreeing canonical forms")
	}
	if _, err := mergePlanResponses(req, []*serve.PlanResponse{
		{Expr: "car", Items: []serve.PlanItem{{Stream: "a"}}, TotalItems: 5},
	}); err == nil {
		t.Fatal("expected an error for a paged shard response")
	}
	if _, err := mergePlanResponses(req, []*serve.PlanResponse{
		{Expr: "car", Watermarks: map[string]float64{"a": 1}},
		{Expr: "car", Watermarks: map[string]float64{"a": 2}},
	}); err == nil {
		t.Fatal("expected an error for overlapping stream ownership")
	}
}
