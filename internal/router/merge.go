package router

import (
	"fmt"
	"sort"

	"focus/api"
)

// This file is the heart of the scatter-gather contract: merged responses
// must be bit-identical to what one focus.System holding every stream
// would answer at the same watermark vector. Streams are disjoint across
// shards and each per-stream answer is already final, so merging is pure
// bookkeeping — the only way to get it wrong is ordering, which is why
// every aggregation below states the single-node order it mirrors.

// mergeFrames combines per-shard frames-form responses into the payload a
// single node would have produced. Answer fields (per-stream frames,
// segments, cluster counts, watermarks) are unioned — stream sets are
// disjoint, duplicates mean the cluster is misconfigured and fail loudly.
// Aggregates mirror focus.System.Query exactly: TotalFrames and GPUTimeMS
// sum per-stream values in sorted stream-name order (the order a direct
// query visits streams, so even float accumulation matches bit for bit)
// and LatencyMS is the max — the slowest stream bounds the query (§5).
func mergeFrames(parts []*api.QueryResponse) (*api.QueryResponse, error) {
	out := &api.QueryResponse{
		Form:       api.FormFrames,
		Watermarks: make(api.WatermarkVector),
		Streams:    make(map[string]*api.StreamResult),
		Cached:     true,
	}
	for i, p := range parts {
		if p.Form != api.FormFrames {
			return nil, fmt.Errorf("shard answered in %q form where %q was requested — mixed shard versions?", p.Form, api.FormFrames)
		}
		// Every shard must echo the same canonical expr and executed leaf
		// options (the router passes them through verbatim); disagreement
		// means mixed shard versions and must fail loudly — a wrong echo
		// would make verifiers replay the wrong query.
		if i == 0 {
			out.Expr = p.Expr
			out.Kx, out.Start, out.End, out.MaxClusters = p.Kx, p.Start, p.End, p.MaxClusters
		} else if p.Expr != out.Expr || p.Kx != out.Kx || p.Start != out.Start ||
			p.End != out.End || p.MaxClusters != out.MaxClusters {
			return nil, fmt.Errorf("shards disagree on the executed query — mixed shard versions?")
		}
		for name, sr := range p.Streams {
			if _, dup := out.Streams[name]; dup {
				return nil, fmt.Errorf("stream %q answered by two shards — shard ownership must be disjoint", name)
			}
			out.Streams[name] = sr
		}
		for name, at := range p.Watermarks {
			if _, dup := out.Watermarks[name]; dup {
				return nil, fmt.Errorf("stream %q answered by two shards — shard ownership must be disjoint", name)
			}
			out.Watermarks[name] = at
		}
		// A merged response is "cached" only if no shard did new work.
		if !p.Cached {
			out.Cached = false
		}
	}
	names := make([]string, 0, len(out.Streams))
	for name := range out.Streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sr := out.Streams[name]
		out.TotalFrames += len(sr.Frames)
		out.GTInferences += sr.GTInferences
		out.GPUTimeMS += sr.GPUTimeMS
		if sr.LatencyMS > out.LatencyMS {
			out.LatencyMS = sr.LatencyMS
		}
	}
	return out, nil
}

// itemRanksBefore is plan.RankBefore on the wire type: score descending,
// then stream name, then frame. It must stay in lockstep with
// plan.RankBefore — the routed-vs-direct bit-identity tests pin the
// equivalence — so that merging per-shard rankings reproduces the exact
// order a single node emits. (Items are unique by (stream, frame) and the
// order is total, so a plain sort of the concatenation is the merge.)
func itemRanksBefore(a, b api.Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	return a.Frame < b.Frame
}

// trackRanksBefore is track.RankBefore on the wire type: score
// descending, then stream name, then track start time, then track ID. It
// must stay in lockstep with track.RankBefore — the routed-vs-direct
// bit-identity tests pin the equivalence. (Tracks are unique by (stream,
// track) and the order is total, so a plain sort of the concatenation is
// the merge.)
func trackRanksBefore(a, b api.TrackItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	if a.StartSec != b.StartSec {
		return a.StartSec < b.StartSec
	}
	return a.Track < b.Track
}

// mergeTracks combines per-shard tracks-form responses exactly as
// mergeRanked combines ranked ones: per-shard track rankings interleave
// under trackRanksBefore and truncate to topK. Track assembly is
// per-stream (a track never crosses streams, hence never crosses shards),
// so the global top K is exactly the top K of the concatenation.
func mergeTracks(topK int, parts []*api.QueryResponse) (*api.QueryResponse, error) {
	out := &api.QueryResponse{
		Form:       api.FormTracks,
		Watermarks: make(api.WatermarkVector),
		Cached:     true,
	}
	total := 0
	for i, p := range parts {
		if p.Form != api.FormTracks {
			return nil, fmt.Errorf("shard answered in %q form where %q was requested — mixed shard versions?", p.Form, api.FormTracks)
		}
		if i == 0 {
			out.Expr = p.Expr
			out.TopK, out.Kx, out.Start, out.End, out.MaxClusters = p.TopK, p.Kx, p.Start, p.End, p.MaxClusters
		} else if p.Expr != out.Expr {
			return nil, fmt.Errorf("shards disagree on the canonical plan (%q vs %q) — mixed shard versions?", out.Expr, p.Expr)
		}
		if len(p.Tracks) != p.TotalItems {
			return nil, fmt.Errorf("shard sent a paged response (%d of %d tracks) — the router needs full slices to merge",
				len(p.Tracks), p.TotalItems)
		}
		for name, at := range p.Watermarks {
			if _, dup := out.Watermarks[name]; dup {
				return nil, fmt.Errorf("stream %q answered by two shards — shard ownership must be disjoint", name)
			}
			out.Watermarks[name] = at
		}
		total += len(p.Tracks)
		out.GTInferences += p.GTInferences
		out.GPUTimeMS += p.GPUTimeMS
		if p.LatencyMS > out.LatencyMS {
			out.LatencyMS = p.LatencyMS
		}
		if !p.Cached {
			out.Cached = false
		}
	}
	out.Tracks = make([]api.TrackItem, 0, total)
	for _, p := range parts {
		out.Tracks = append(out.Tracks, p.Tracks...)
	}
	sort.Slice(out.Tracks, func(i, j int) bool { return trackRanksBefore(out.Tracks[i], out.Tracks[j]) })
	if topK > 0 && len(out.Tracks) > topK {
		out.Tracks = out.Tracks[:topK]
	}
	out.TotalItems = len(out.Tracks)
	return out, nil
}

// mergeRanked combines per-shard ranked-form responses into the payload a
// single node would have produced: per-shard rankings interleave under
// itemRanksBefore and truncate to topK. Each shard returned its own top K,
// and a stream's items rank identically whether its shard executed alone
// or within a single node, so the global top K is exactly the top K of the
// concatenation. Cost counters aggregate like plan.Stats (sum inferences
// and GPU time, max latency); watermark vectors union disjointly.
func mergeRanked(topK int, parts []*api.QueryResponse) (*api.QueryResponse, error) {
	out := &api.QueryResponse{
		Form:       api.FormRanked,
		Watermarks: make(api.WatermarkVector),
		Cached:     true,
	}
	total := 0
	for i, p := range parts {
		if p.Form != api.FormRanked {
			return nil, fmt.Errorf("shard answered in %q form where %q was requested — mixed shard versions?", p.Form, api.FormRanked)
		}
		if i == 0 {
			out.Expr = p.Expr
			out.TopK, out.Kx, out.Start, out.End, out.MaxClusters = p.TopK, p.Kx, p.Start, p.End, p.MaxClusters
		} else if p.Expr != out.Expr {
			return nil, fmt.Errorf("shards disagree on the canonical plan (%q vs %q) — mixed shard versions?", out.Expr, p.Expr)
		}
		if len(p.Items) != p.TotalItems {
			return nil, fmt.Errorf("shard sent a paged response (%d of %d items) — the router needs full slices to merge",
				len(p.Items), p.TotalItems)
		}
		for name, at := range p.Watermarks {
			if _, dup := out.Watermarks[name]; dup {
				return nil, fmt.Errorf("stream %q answered by two shards — shard ownership must be disjoint", name)
			}
			out.Watermarks[name] = at
		}
		total += len(p.Items)
		out.GTInferences += p.GTInferences
		out.GPUTimeMS += p.GPUTimeMS
		if p.LatencyMS > out.LatencyMS {
			out.LatencyMS = p.LatencyMS
		}
		if !p.Cached {
			out.Cached = false
		}
	}
	out.Items = make([]api.Item, 0, total)
	for _, p := range parts {
		out.Items = append(out.Items, p.Items...)
	}
	sort.Slice(out.Items, func(i, j int) bool { return itemRanksBefore(out.Items[i], out.Items[j]) })
	if topK > 0 && len(out.Items) > topK {
		out.Items = out.Items[:topK]
	}
	out.TotalItems = len(out.Items)
	return out, nil
}
