package router

import (
	"fmt"
	"sort"

	"focus/internal/serve"
)

// This file is the heart of the scatter-gather contract: merged responses
// must be bit-identical to what one focus.System holding every stream
// would answer at the same watermark vector. Streams are disjoint across
// shards and each per-stream answer is already final, so merging is pure
// bookkeeping — the only way to get it wrong is ordering, which is why
// every aggregation below states the single-node order it mirrors.

// mergeQueryResponses combines per-shard /query responses into the payload
// a single node would have produced. Answer fields (per-stream frames,
// segments, cluster counts, watermarks) are unioned — stream sets are
// disjoint, duplicates mean the cluster is misconfigured and fail loudly.
// Aggregates mirror focus.System.Query exactly: TotalFrames and GPUTimeMS
// sum per-stream values in sorted stream-name order (the order a direct
// query visits streams, so even float accumulation matches bit for bit)
// and LatencyMS is the max — the slowest stream bounds the query (§5).
func mergeQueryResponses(class string, parts []*serve.QueryResponse) (*serve.QueryResponse, error) {
	out := &serve.QueryResponse{
		Class:   class,
		Streams: make(map[string]*serve.StreamQueryResult),
		Cached:  true,
	}
	for i, p := range parts {
		// Every shard must echo the same executed leaf options (the router
		// passes them through verbatim); disagreement means mixed shard
		// versions and must fail loudly, exactly like the /plan canonical
		// check — a wrong echo would make verifiers replay the wrong query.
		if i == 0 {
			out.Kx, out.Start, out.End, out.MaxClusters = p.Kx, p.Start, p.End, p.MaxClusters
		} else if p.Kx != out.Kx || p.Start != out.Start || p.End != out.End || p.MaxClusters != out.MaxClusters {
			return nil, fmt.Errorf("shards disagree on the executed query options — mixed shard versions?")
		}
		for name, sr := range p.Streams {
			if _, dup := out.Streams[name]; dup {
				return nil, fmt.Errorf("stream %q answered by two shards — shard ownership must be disjoint", name)
			}
			out.Streams[name] = sr
		}
		// A merged response is "cached" only if no shard did new work.
		if !p.Cached {
			out.Cached = false
		}
	}
	names := make([]string, 0, len(out.Streams))
	for name := range out.Streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sr := out.Streams[name]
		out.TotalFrames += len(sr.Frames)
		out.GPUTimeMS += sr.GPUTimeMS
		if sr.LatencyMS > out.LatencyMS {
			out.LatencyMS = sr.LatencyMS
		}
	}
	return out, nil
}

// itemRanksBefore is plan.RankBefore on the wire type: score descending,
// then stream name, then frame. It must stay in lockstep with
// plan.RankBefore — the routed-vs-direct bit-identity tests pin the
// equivalence — so that merging per-shard rankings reproduces the exact
// order a single node emits. (Items are unique by (stream, frame) and the
// order is total, so a plain sort of the concatenation is the merge.)
func itemRanksBefore(a, b serve.PlanItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	return a.Frame < b.Frame
}

// mergePlanResponses combines per-shard /plan responses into the payload a
// single node would have produced: per-shard rankings interleave under
// itemRanksBefore and truncate to TopK. Each shard returned its own top K,
// and a stream's items rank identically whether its shard executed alone
// or within a single node, so the global top K is exactly the top K of the
// concatenation. Cost counters aggregate like plan.Stats (sum inferences
// and GPU time, max latency); watermark vectors union disjointly.
func mergePlanResponses(req *serve.PlanRequest, parts []*serve.PlanResponse) (*serve.PlanResponse, error) {
	out := &serve.PlanResponse{
		TopK:        req.TopK,
		Kx:          req.Kx,
		Start:       req.Start,
		End:         req.End,
		MaxClusters: req.MaxClusters,
		Watermarks:  make(map[string]float64),
		Cached:      true,
	}
	total := 0
	for i, p := range parts {
		if i == 0 {
			out.Expr = p.Expr
		} else if p.Expr != out.Expr {
			return nil, fmt.Errorf("shards disagree on the canonical plan (%q vs %q) — mixed shard versions?", out.Expr, p.Expr)
		}
		if len(p.Items) != p.TotalItems {
			return nil, fmt.Errorf("shard sent a paged plan response (%d of %d items) — the router needs full slices to merge",
				len(p.Items), p.TotalItems)
		}
		for name, at := range p.Watermarks {
			if _, dup := out.Watermarks[name]; dup {
				return nil, fmt.Errorf("stream %q answered by two shards — shard ownership must be disjoint", name)
			}
			out.Watermarks[name] = at
		}
		total += len(p.Items)
		out.GTInferences += p.GTInferences
		out.GPUTimeMS += p.GPUTimeMS
		if p.LatencyMS > out.LatencyMS {
			out.LatencyMS = p.LatencyMS
		}
		if !p.Cached {
			out.Cached = false
		}
	}
	out.Items = make([]serve.PlanItem, 0, total)
	for _, p := range parts {
		out.Items = append(out.Items, p.Items...)
	}
	sort.Slice(out.Items, func(i, j int) bool { return itemRanksBefore(out.Items[i], out.Items[j]) })
	if req.TopK > 0 && len(out.Items) > req.TopK {
		out.Items = out.Items[:req.TopK]
	}
	out.TotalItems = len(out.Items)
	return out, nil
}
