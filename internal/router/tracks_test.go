package router_test

import (
	"context"
	"reflect"
	"testing"

	"focus/api"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

// TestRoutedTracksMatchDirect extends the scatter-gather acceptance pin to
// the tracks form: every routed temporal query must be bit-identical to a
// direct focus.System.TrackQuery on one system holding all streams, pinned
// to the merged watermark vector the response reports — track assembly is
// per-stream, so sharding must never change an answer.
func TestRoutedTracksMatchDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-shard cluster plus a reference system")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}},
		serve.Config{NoBackgroundIngest: true},
		true)
	// Uneven vector, but deep everywhere: a cluster seals ~20s (the ingest
	// idle timeout) after its object leaves, and tracks assemble from
	// sealed clusters only — shallow watermarks would pin empty answers.
	c.advance("auburn_c", 35)
	c.advance("jacksonh", 45)
	c.advance("city_a_d", 50)

	verify := loadgen.NewDirectTrackVerifier(c.ref)
	total := 0
	for _, req := range []*api.QueryRequest{
		{Expr: "car & dur(1)"},
		{Expr: "car & dur(1)", TopK: 5},
		{Expr: "(car | bus) & dur(2)", TopK: 7},
		{Expr: "person & vel(0)"},
		{Expr: "car & dur(1)", Streams: []string{"jacksonh"}}, // single shard
		// pinned below the snapshot, still past the seal lag
		{Expr: "car & dur(1)", At: api.WatermarkVector{"auburn_c": 30, "jacksonh": 45, "city_a_d": 40}},
	} {
		tr, err := c.queryV1(req)
		if err != nil {
			t.Fatalf("v1 track query %+v: %v", req, err)
		}
		if tr.Form != api.FormTracks {
			t.Fatalf("v1 track query %+v answered in %q form", req, tr.Form)
		}
		if err := verify(tr); err != nil {
			t.Errorf("routed track query %+v diverges from direct execution: %v", req, err)
		}
		total += tr.TotalItems
	}
	if total == 0 {
		t.Fatal("no track query matched anything; pick denser windows")
	}

	// Form mismatches reject at the router exactly as at a shard.
	if _, err := c.queryV1(&api.QueryRequest{Expr: "car", Form: api.FormTracks}); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("tracks form on boolean expr: %v, want code bad_request", err)
	}
	if _, err := c.queryV1(&api.QueryRequest{Expr: "car & dur(1)", Form: api.FormRanked}); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("ranked form on temporal expr: %v, want code bad_request", err)
	}

	// Cursor paging through the router: pages at the pinned vector must
	// concatenate to exactly the one-shot merged ranking at that vector —
	// and the assembled read must verify against the reference system.
	oneShot, err := c.queryV1(&api.QueryRequest{Expr: "car & dur(1)", TopK: 9})
	if err != nil {
		t.Fatal(err)
	}
	assembled, err := c.cli.CollectTrackPages(context.Background(),
		&api.QueryRequest{Expr: "car & dur(1)", TopK: 9, At: oneShot.Watermarks}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(assembled.Watermarks, oneShot.Watermarks) {
		t.Fatalf("paged read pinned %v, one-shot %v", assembled.Watermarks, oneShot.Watermarks)
	}
	if !reflect.DeepEqual(assembled.Tracks, oneShot.Tracks) {
		t.Fatalf("cursor pages diverge from one-shot:\npaged: %+v\nfull:  %+v", assembled.Tracks, oneShot.Tracks)
	}
	if err := verify(assembled); err != nil {
		t.Errorf("assembled cursor read diverges from direct execution: %v", err)
	}
}
