// Package router is the scatter-gather front tier that scales focus-serve
// horizontally: N serve processes ("shards") each own a disjoint subset of
// the streams, and one focus-router presents them as a single query
// endpoint with the same wire surface — the v1 contract of focus/api
// (POST /v1/query, GET /v1/streams, GET /v1/stats, plus the deprecated
// legacy shims) — and, critically, the same answers. The router speaks v1
// to the shards too, classifying shard failures by structured error code
// rather than by message strings or marker headers.
//
// Placement is a ShardMap: a static roster of shards plus rendezvous
// hashing (with explicit pins as the override) assigning each stream to
// exactly one shard. The router discovers what each shard actually serves
// from its /v1/streams endpoint, health-checks shards in the background,
// and fans each request out only to the shards owning the referenced
// streams.
//
// Merging obeys one contract, stated next to the single-node contracts in
// DESIGN.md: because streams are disjoint across shards and every
// per-stream answer is a pure function of (plan, options, watermark),
// gathering per-shard results and merging them in the single-node
// engine's deterministic order (stream-sorted aggregation for the frames
// form, plan.RankBefore interleaving for the ranked form) yields answers
// bit-identical to one focus.System holding all the streams, executed at
// the merged watermark vector — and cursor paging over the merged ranking
// is bit-identical to single-node paging at the same pinned vector.
// Partial failure is never silent: if any required shard is down,
// draining, or errors, the request fails with a structured error naming
// the shard (Error.Shard) rather than returning a subset of the answer.
package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"focus/api"
	"focus/internal/reshard"
)

// Config tunes a Router.
type Config struct {
	// Map is the placement policy: the shard roster plus stream pins.
	Map *ShardMap
	// Refresh is the health/ownership poll interval. Default 2s.
	Refresh time.Duration
	// Timeout bounds each proxied shard request. Default 30s.
	Timeout time.Duration
	// StrictPlacement makes Start fail when a shard serves a stream the
	// ShardMap assigns elsewhere. Off, mismatches are surfaced in /stats
	// (placement_ok per shard) but routing follows what shards actually
	// serve.
	StrictPlacement bool
	// ShardRetries is how many times one failed shard sub-request is
	// retried before the failure is gathered — transient shapes only:
	// transport errors, structured "unavailable"/"not_ready", and
	// overloaded 429s (honoring Retry-After). Default 2; negative disables
	// retries.
	ShardRetries int
	// ShardBackoff is the base wait between sub-request retries; it
	// doubles per attempt (capped) with jitter. Default 50ms.
	ShardBackoff time.Duration
	// ProbationPolls is how many consecutive healthy health-poll rounds a
	// down shard must pass before it rejoins rotation. Re-entry through
	// probation keeps a flapping shard from thrashing queries: one lucky
	// poll is not recovery. Default 3; 1 readmits on the first healthy
	// poll.
	ProbationPolls int
	// Client overrides the proxy HTTP client (tests inject one); nil builds
	// a client with Timeout.
	Client *http.Client
}

func (c *Config) applyDefaults() {
	if c.Refresh <= 0 {
		c.Refresh = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.ShardRetries == 0 {
		c.ShardRetries = 2
	}
	if c.ShardRetries < 0 {
		c.ShardRetries = 0
	}
	if c.ShardBackoff <= 0 {
		c.ShardBackoff = 50 * time.Millisecond
	}
	if c.ProbationPolls <= 0 {
		c.ProbationPolls = 3
	}
}

// Shard health states as reported in /stats and /healthz.
const (
	// StateHealthy routes queries normally.
	StateHealthy = "healthy"
	// StateDraining keeps the shard's ownership but rejects queries with
	// 503 + the draining marker: the operator is restarting it.
	StateDraining = "draining"
	// StateDown means unreachable or not ready; queries touching its
	// streams fail with 503.
	StateDown = "down"
	// StateProbation is the re-entry gate between down and healthy: the
	// shard is answering health polls again but has not yet passed
	// Config.ProbationPolls consecutive rounds. It is not routed to (its
	// streams fail like a down shard's, or are dropped by allow_partial),
	// but its ownership and watermarks refresh normally.
	StateProbation = "probation"
)

// shardState is the router's view of one backend, refreshed by the poller.
// Ownership (streams/watermarks) is sticky: a shard that stops responding
// keeps its last-known streams so queries for them fail with an explicit
// "shard down" 503 instead of "unknown stream".
type shardState struct {
	spec       ShardSpec
	state      string
	lastErr    string
	streams    []string
	watermarks map[string]float64
	// epochs are the per-stream ownership epochs the shard last reported;
	// duplicates mid-handoff resolve to the higher epoch.
	epochs      map[string]uint64
	placementOK bool
	// polled is false until the first health poll: the very first healthy
	// observation readmits directly (there is no outage to be suspicious
	// of), so Start's discovery round does not boot every shard into
	// probation.
	polled bool
	// healthyStreak counts consecutive healthy polls since the last
	// non-healthy one — the probation exit condition.
	healthyStreak int
}

// Router is the scatter-gather front tier. Create with New, then Start to
// run initial discovery and the background health poller.
type Router struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux

	startedNS atomic.Int64
	ready     atomic.Bool
	stopCh    chan struct{}
	stopped   sync.Once
	wg        sync.WaitGroup

	// mu guards the discovery state below. cfg.Map is also mutated under
	// mu (live resharding swaps it); readers snapshot it before I/O.
	mu     sync.RWMutex
	shards map[string]*shardState
	owners map[string]streamOwner
	// reshardOnStep, when non-nil, is called before every handoff protocol
	// step of a reshard; an error aborts that stream's move there. The
	// crash-matrix tests use it to kill participants at exact protocol
	// points; production leaves it nil.
	reshardOnStep func(m reshard.Move, step reshard.Step) error

	// flips are reshard-coordinator ownership overrides: a completed
	// handoff reroutes the stream to its destination the instant the
	// cutover commits, without waiting a poll round. Each entry is cleared
	// once discovery converges on it (the destination reports the stream
	// at or past the flipped epoch).
	flips map[string]streamOwner
	// resharding serializes /v1/admin/reshard operations.
	resharding sync.Mutex

	// counters
	queries      atomic.Int64
	planQueries  atomic.Int64
	trackQueries atomic.Int64
	// earlyExitQueries counts ranked queries routed in early-exit mode
	// (a subset of planQueries).
	earlyExitQueries atomic.Int64
	legacyReqs       atomic.Int64
	shardReqs        atomic.Int64
	shardRetried     atomic.Int64
	partials         atomic.Int64
	rejected         atomic.Int64
	unavailable      atomic.Int64
	clientErrs       atomic.Int64
	upstreamErrs     atomic.Int64
	// subscription counters: subs counts routed subscriptions ever
	// accepted (hello written), subsActive the ones currently streaming,
	// subDeltas the merged delta frames emitted, and subDrops the
	// subscriptions shed after losing a shard leg mid-stream.
	subs       atomic.Int64
	subsActive atomic.Int64
	subDeltas  atomic.Int64
	subDrops   atomic.Int64
	// reshard counters: operations accepted, streams moved, and failed
	// moves (see OPERATIONS.md §"Resharding").
	reshards     atomic.Int64
	reshardMoves atomic.Int64
	reshardErrs  atomic.Int64
}

// streamOwner is one stream's resolved owner: the shard serving it, at
// the stream's ownership epoch (0 = never moved). When two shards report
// the same stream mid-cutover, the higher epoch wins — the handoff
// destination imports at source epoch + 1, so the router's choice is
// deterministic and lands on the shard that will keep advancing the
// stream.
type streamOwner struct {
	shard string
	epoch uint64
}

// New validates the shard map and builds a router. Start must be called
// before the handler answers queries.
func New(cfg Config) (*Router, error) {
	if cfg.Map == nil {
		return nil, fmt.Errorf("router: Config.Map is required")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	cfg.applyDefaults()
	r := &Router{
		cfg:    cfg,
		client: cfg.Client,
		stopCh: make(chan struct{}),
		shards: make(map[string]*shardState, len(cfg.Map.Shards)),
		owners: make(map[string]streamOwner),
		flips:  make(map[string]streamOwner),
	}
	if r.client == nil {
		// A dedicated transport with a deep idle pool per shard host:
		// scatter-gather fans many concurrent sub-requests at few hosts,
		// and http.DefaultTransport's 2 idle conns per host would redial
		// on nearly every proxied request under load.
		r.client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
			},
		}
	}
	for _, spec := range cfg.Map.Shards {
		r.shards[spec.Name] = &shardState{spec: spec, state: StateDown, placementOK: true}
	}
	r.mux = http.NewServeMux()
	// v1 is the primary surface; the pre-v1 query endpoints are deprecated
	// shims; /streams, /stats and /healthz stay where ops tooling expects
	// them.
	r.mux.HandleFunc(api.PathQuery, r.handleV1Query)
	r.mux.HandleFunc(api.PathSubscribe, r.handleV1Subscribe)
	r.mux.HandleFunc(api.PathStreams, r.handleStreams)
	r.mux.HandleFunc(api.PathStats, r.handleStats)
	r.mux.HandleFunc(api.PathLegacyQuery, r.handleLegacyQuery)
	r.mux.HandleFunc(api.PathLegacyPlan, r.handleLegacyPlan)
	r.mux.HandleFunc("/streams", r.handleStreams)
	r.mux.HandleFunc("/stats", r.handleStats)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	// Live shard-map transitions (see reshard.go and internal/reshard).
	// Unauthenticated like the rest of the surface: the port must stay
	// inside the trust boundary (OPERATIONS.md §7).
	r.mux.HandleFunc(api.PathAdminReshard, r.handleAdminReshard)
	return r, nil
}

// Handler returns the HTTP handler; callers own the listener.
func (r *Router) Handler() http.Handler { return r.mux }

// Start runs initial discovery — every shard must be reachable and the
// discovered stream ownership must be disjoint (and, with StrictPlacement,
// must match the ShardMap's assignment) — then spawns the background
// health/ownership poller.
func (r *Router) Start() error {
	r.refresh()
	r.mu.RLock()
	var boot []string
	for name, sh := range r.shards {
		if sh.state == StateDown {
			boot = append(boot, fmt.Sprintf("%s (%s): %s", name, sh.spec.URL, sh.lastErr))
		}
		if r.cfg.StrictPlacement && !sh.placementOK {
			boot = append(boot, fmt.Sprintf("%s: serves streams the shard map assigns elsewhere", name))
		}
	}
	r.mu.RUnlock()
	if len(boot) > 0 {
		sort.Strings(boot)
		return fmt.Errorf("router: shards not ready: %s", strings.Join(boot, "; "))
	}
	r.startedNS.Store(time.Now().UnixNano())
	r.ready.Store(true)
	r.wg.Add(1)
	go r.pollLoop()
	return nil
}

// Stop halts the background poller.
func (r *Router) Stop() {
	r.stopped.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

func (r *Router) pollLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.Refresh)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-ticker.C:
			r.refresh()
		}
	}
}

// refresh polls every shard's /healthz and /streams concurrently and
// republishes the router's view: shard states, stream ownership (epoch-
// resolved), and per-stream watermarks. The roster polled is the live
// shard set — during a reshard this is the union of old and new maps, so
// joining shards are health-gated before any stream moves to them.
func (r *Router) refresh() {
	r.mu.RLock()
	placement := r.cfg.Map
	specs := make([]ShardSpec, 0, len(r.shards))
	for _, name := range r.shardNamesLocked() {
		specs = append(specs, r.shards[name].spec)
	}
	r.mu.RUnlock()
	type polled struct {
		state      string
		lastErr    string
		streams    []string
		epochs     map[string]uint64
		watermarks map[string]float64
	}
	results := make([]polled, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec ShardSpec) {
			defer wg.Done()
			p := &results[i]
			p.state, p.lastErr = r.pollHealth(spec)
			if p.state == StateDown {
				return
			}
			statuses, err := r.fetchStreams(spec)
			if err != nil {
				// Health said alive but the ownership surface failed:
				// treat as down — routing without ownership is guesswork.
				p.state, p.lastErr = StateDown, err.Error()
				return
			}
			p.watermarks = make(map[string]float64, len(statuses))
			p.epochs = make(map[string]uint64, len(statuses))
			for _, st := range statuses {
				p.streams = append(p.streams, st.Name)
				p.watermarks[st.Name] = st.Watermark
				p.epochs[st.Name] = st.Epoch
			}
			sort.Strings(p.streams)
		}(i, spec)
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	for i, spec := range specs {
		sh := r.shards[spec.Name]
		if sh == nil || sh.spec.URL != spec.URL {
			// The roster changed under the poll (a reshard removed or
			// replaced the shard); drop the stale result.
			continue
		}
		p := results[i]
		switch {
		case p.state != StateHealthy:
			sh.healthyStreak = 0
			sh.state, sh.lastErr = p.state, p.lastErr
		default:
			sh.healthyStreak++
			// A shard seen down (or mid-probation) must string together
			// ProbationPolls healthy rounds before it is routed to again;
			// a shard that was already healthy — or never observed at all —
			// readmits directly.
			if !sh.polled || sh.state == StateHealthy || sh.healthyStreak >= r.cfg.ProbationPolls {
				sh.state, sh.lastErr = StateHealthy, ""
			} else {
				sh.state = StateProbation
				sh.lastErr = fmt.Sprintf("in probation: %d/%d consecutive healthy polls",
					sh.healthyStreak, r.cfg.ProbationPolls)
			}
		}
		sh.polled = true
		if p.state != StateDown {
			sh.streams, sh.watermarks, sh.epochs = p.streams, p.watermarks, p.epochs
			sh.placementOK = true
			for _, st := range p.streams {
				if placement.Assign(st).Name != spec.Name {
					sh.placementOK = false
				}
			}
		}
	}
	r.rebuildOwnersLocked()
}

// rebuildOwnersLocked recomputes stream ownership from the shards'
// last-known streams. A stream reported by two shards resolves to the
// higher ownership epoch — the expected (and harmless) shape mid-handoff,
// where source and destination overlap for under a poll round; an
// equal-epoch duplicate is real misconfiguration and is surfaced as
// placement breakage on the later shard (name order, so deterministic).
// Reshard flips override the polled view until discovery converges on
// them.
func (r *Router) rebuildOwnersLocked() {
	owners := make(map[string]streamOwner)
	for _, name := range r.shardNamesLocked() {
		sh := r.shards[name]
		for _, st := range sh.streams {
			cand := streamOwner{shard: name, epoch: sh.epochs[st]}
			prev, dup := owners[st]
			if dup {
				if cand.epoch == prev.epoch {
					sh.placementOK = false
					sh.lastErr = fmt.Sprintf("stream %q also served by shard %q", st, prev.shard)
					continue
				}
				if cand.epoch < prev.epoch {
					continue
				}
			}
			owners[st] = cand
		}
	}
	for st, flip := range r.flips {
		cur, ok := owners[st]
		if ok && cur.shard == flip.shard && cur.epoch >= flip.epoch {
			// Discovery caught up with the cutover; the override has done
			// its job.
			delete(r.flips, st)
			continue
		}
		owners[st] = flip
	}
	r.owners = owners
}

// applyFlip is the reshard coordinator's commit point: the stream is
// rerouted to its destination shard immediately and atomically, ahead of
// the next discovery round.
func (r *Router) applyFlip(stream, shard string, epoch uint64, wm float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	flip := streamOwner{shard: shard, epoch: epoch}
	r.flips[stream] = flip
	r.owners[stream] = flip
	if sh := r.shards[shard]; sh != nil && sh.watermarks != nil {
		// Seed the destination's watermark view with the sealed watermark
		// so the stale poll view never reads as a regression.
		if sh.watermarks[stream] < wm {
			sh.watermarks[stream] = wm
		}
	}
}

// SetReshardOnStep installs a hook called before every handoff protocol
// step of a reshard; a non-nil return aborts that stream's move at that
// step. It is a crash-drill seam: the crash-matrix tests use it to kill
// participants at exact protocol points. Production leaves it unset.
// Not safe to call while a reshard is in flight.
func (r *Router) SetReshardOnStep(fn func(m reshard.Move, step reshard.Step) error) {
	r.reshardOnStep = fn
}

func (r *Router) shardNamesLocked() []string {
	names := make([]string, 0, len(r.shards))
	for n := range r.shards {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// pollHealth classifies one shard's /healthz answer by the status field
// of its JSON body ("ok" / "draining" / "not ready") — structured state,
// not header sniffing.
func (r *Router) pollHealth(spec ShardSpec) (state, lastErr string) {
	resp, err := r.client.Get(spec.URL + "/healthz")
	if err != nil {
		return StateDown, err.Error()
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var h struct {
		Status string `json:"status"`
	}
	_ = json.Unmarshal(body, &h)
	switch {
	case resp.StatusCode == http.StatusOK:
		return StateHealthy, ""
	case h.Status == "draining":
		return StateDraining, ""
	default:
		return StateDown, fmt.Sprintf("healthz status %d", resp.StatusCode)
	}
}

func (r *Router) fetchStreams(spec ShardSpec) ([]api.StreamStatus, error) {
	resp, err := r.client.Get(spec.URL + api.PathStreams)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("streams status %d", resp.StatusCode)
	}
	var out []api.StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding streams: %w", err)
	}
	return out, nil
}

// Streams returns every known stream name, sorted — the router's "query
// all" universe.
func (r *Router) Streams() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.owners))
	for st := range r.owners {
		out = append(out, st)
	}
	sort.Strings(out)
	return out
}
