package scalebench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is the committed floor the CI bench-regression gate holds fresh
// scaling runs to: per-stream-count reference speedups plus a relative
// tolerance. A fresh point failing `speedup >= reference * (1 - tolerance)`
// fails the gate, as does a missing point or a non-identical parallel run.
// References should be set from a healthy run on CI-class hardware and only
// ratcheted deliberately.
type Baseline struct {
	// Tolerance is the allowed relative loss, e.g. 0.20 for "fail if any
	// scaling point loses more than 20%".
	Tolerance float64         `json:"tolerance"`
	Points    []BaselinePoint `json:"points"`
	// Raw, when present, gates the raw-speed measurements too.
	Raw *RawBaseline `json:"raw,omitempty"`
}

// RawBaseline is the committed floor for the raw-speed suite. IVFSpeedup
// is a reference subject to the shared tolerance (the IVF index must not
// lose more than Tolerance vs the linear scan's committed reference);
// EarlyExitMaxRatio is an absolute ceiling — the early-exit GPU-cost
// contract is "at most this fraction of exact", not a ratcheted
// measurement, so no tolerance applies. IVF bit-identity is enforced
// unconditionally whenever a raw measurement is present.
type RawBaseline struct {
	IVFSpeedup        float64 `json:"ivf_speedup"`
	EarlyExitMaxRatio float64 `json:"early_exit_max_gpu_ratio"`
}

// BaselinePoint is the reference for one stream count.
type BaselinePoint struct {
	Streams       int     `json:"streams"`
	IngestSpeedup float64 `json:"ingest_speedup"`
	QuerySpeedup  float64 `json:"query_speedup"`
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("scalebench: parsing baseline %s: %w", path, err)
	}
	if b.Tolerance < 0 || b.Tolerance >= 1 {
		return nil, fmt.Errorf("scalebench: baseline tolerance %v out of [0, 1)", b.Tolerance)
	}
	if len(b.Points) == 0 {
		return nil, fmt.Errorf("scalebench: baseline %s has no points", path)
	}
	return &b, nil
}

// LatestRun reads a trajectory file and returns its most recent run.
func LatestRun(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("scalebench: parsing trajectory %s: %w", path, err)
	}
	if len(tr.Runs) == 0 {
		return nil, fmt.Errorf("scalebench: trajectory %s has no runs", path)
	}
	return tr.Runs[len(tr.Runs)-1], nil
}

// Check compares a fresh report against the baseline and returns the list
// of violations (empty = gate passes). Fresh points without a baseline
// entry have no speedup floor, but their bit-identity is still enforced —
// a non-identical parallel run is a correctness bug at any stream count.
func (b *Baseline) Check(rep *Report) []string {
	var failures []string
	byStreams := make(map[int]*Point, len(rep.Points))
	for i := range rep.Points {
		byStreams[rep.Points[i].Streams] = &rep.Points[i]
	}
	baselined := make(map[int]bool, len(b.Points))
	for _, ref := range b.Points {
		baselined[ref.Streams] = true
	}
	for _, p := range rep.Points {
		if !p.Identical && !baselined[p.Streams] {
			failures = append(failures,
				fmt.Sprintf("streams=%d: parallel run was not bit-identical to sequential (unbaselined point)", p.Streams))
		}
	}
	floor := 1 - b.Tolerance
	for _, ref := range b.Points {
		p, ok := byStreams[ref.Streams]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("streams=%d: no measurement in fresh run", ref.Streams))
			continue
		}
		if !p.Identical {
			failures = append(failures,
				fmt.Sprintf("streams=%d: parallel run was not bit-identical to sequential", ref.Streams))
		}
		if min := ref.IngestSpeedup * floor; p.IngestSpeedup < min {
			failures = append(failures,
				fmt.Sprintf("streams=%d: ingest speedup %.2fx below floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
					ref.Streams, p.IngestSpeedup, min, ref.IngestSpeedup, 100*b.Tolerance))
		}
		if min := ref.QuerySpeedup * floor; p.QuerySpeedup < min {
			failures = append(failures,
				fmt.Sprintf("streams=%d: query speedup %.2fx below floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
					ref.Streams, p.QuerySpeedup, min, ref.QuerySpeedup, 100*b.Tolerance))
		}
	}
	// IVF exactness is a correctness property, enforced whether or not the
	// raw suite is baselined — like bit-identity on unbaselined points.
	if rep.Raw != nil && !rep.Raw.IVFIdentical {
		failures = append(failures,
			"raw: IVF engine state was not bit-identical to the linear scan's")
	}
	if b.Raw != nil {
		if rep.Raw == nil {
			failures = append(failures, "raw: no raw-speed measurement in fresh run")
			return failures
		}
		if min := b.Raw.IVFSpeedup * floor; rep.Raw.IVFSpeedup < min {
			failures = append(failures,
				fmt.Sprintf("raw: IVF speedup %.2fx below floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
					rep.Raw.IVFSpeedup, min, b.Raw.IVFSpeedup, 100*b.Tolerance))
		}
		if rep.Raw.EarlyExitRatio > b.Raw.EarlyExitMaxRatio {
			failures = append(failures,
				fmt.Sprintf("raw: early-exit GPU ratio %.2f above the %.2f ceiling",
					rep.Raw.EarlyExitRatio, b.Raw.EarlyExitMaxRatio))
		}
	}
	return failures
}
