// Package scalebench measures how the parallel execution layer scales with
// stream count: wall-clock time of concurrent multi-stream ingest and
// cross-stream query fan-out versus their sequential reference paths, on
// otherwise identical systems.
//
// The benchmark runs under a real-time GPU pace (focus.Config.GPUPace): each
// simulated GPU millisecond costs a sliver of real time on the goroutine
// doing the inference, so per-stream workers measurably overlap their GPU
// stalls the way the paper's deployment does (§5). Because pacing only adds
// sleeps, the sequential and parallel runs must produce bit-identical
// results — the harness verifies that on every point and reports it.
//
// Results append to a JSON trajectory file (BENCH_parallel.json) so speedups
// are comparable across revisions.
package scalebench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"focus"
	"focus/internal/tune"
	"focus/internal/video"
)

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// Config scales the benchmark.
type Config struct {
	// StreamCounts are the fleet sizes to measure (e.g. 1, 4, 16).
	StreamCounts []int
	// DurationSec is the per-stream window length.
	DurationSec float64
	// SampleEvery is the frame sampling stride.
	SampleEvery int
	// Seed drives the deterministic simulation.
	Seed uint64
	// NumGPUs is the query-time GPU parallelism.
	NumGPUs int
	// GPUPace is the real time charged per simulated GPU millisecond.
	GPUPace time.Duration
	// Classes are the cross-stream query classes (cold GT-CNN caches).
	Classes []string
}

// DefaultConfig returns the standard scaling configuration: 1/4/16 streams,
// a window long enough for stable timings, and a pace at which per-stream
// GPU stalls dominate the CPU cost of the simulation — the regime the
// paper's deployment lives in, where ingest workers wait on GPUs and
// parallelism across streams hides that latency. The full suite stays
// under ~2 minutes on one core.
func DefaultConfig() Config {
	return Config{
		StreamCounts: []int{1, 4, 16},
		DurationSec:  45,
		SampleEvery:  1,
		Seed:         1,
		NumGPUs:      10,
		GPUPace:      300 * time.Microsecond,
		Classes:      []string{"car", "person"},
	}
}

// Point is one stream-count measurement.
type Point struct {
	Streams int `json:"streams"`

	IngestSeqSec  float64 `json:"ingest_seq_sec"`
	IngestParSec  float64 `json:"ingest_par_sec"`
	IngestSpeedup float64 `json:"ingest_speedup"`

	QuerySeqSec  float64 `json:"query_seq_sec"`
	QueryParSec  float64 `json:"query_par_sec"`
	QuerySpeedup float64 `json:"query_speedup"`

	// Identical reports that the parallel run reproduced the sequential
	// run's indexes and query answers exactly.
	Identical bool `json:"identical"`

	// Workload identity summary for the trajectory.
	Sightings   int `json:"sightings"`
	Clusters    int `json:"clusters"`
	QueryFrames int `json:"query_frames"`
}

// Report is one benchmark run.
type Report struct {
	When        string  `json:"when"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	GPUPaceUS   float64 `json:"gpu_pace_us_per_ms"`
	DurationSec float64 `json:"duration_sec"`
	SampleEvery int     `json:"sample_every"`
	NumGPUs     int     `json:"num_gpus"`
	Seed        uint64  `json:"seed"`
	Points      []Point `json:"points"`
	// Raw holds the stream-count-independent raw-speed measurements (IVF
	// vs linear scan, early-exit vs exact); nil on runs predating it.
	Raw *RawReport `json:"raw,omitempty"`
}

// trajectory is the cross-revision file layout.
type trajectory struct {
	Runs []*Report `json:"runs"`
}

// benchStreamNames are the busier Table 1 presets: dense enough that even
// short benchmark windows yield a tunable sample on every stream. The
// first four are street scenes with comparable per-query verification
// load; fan-out latency is bounded by the slowest stream (§5), so a
// grossly imbalanced small fleet would measure that stream, not scaling.
var benchStreamNames = []string{
	"jacksonh", "city_a_d", "auburn_c", "church_st",
	"cnn", "msnbc", "sittard", "foxnews", "lausanne",
}

// streamSpecs returns n stream specs cycling through the busy Table 1
// presets, renaming repeats. A renamed spec generates different video
// (stream randomness derives from the name), so every synthetic stream is a
// distinct workload.
func streamSpecs(n int) ([]video.StreamSpec, error) {
	out := make([]video.StreamSpec, n)
	for i := range out {
		name := benchStreamNames[i%len(benchStreamNames)]
		spec, ok := video.SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("scalebench: unknown stream preset %q", name)
		}
		if i >= len(benchStreamNames) {
			spec.Name = fmt.Sprintf("%s#%d", spec.Name, i/len(benchStreamNames))
		}
		out[i] = spec
	}
	return out, nil
}

// benchTuneOptions is a deliberately small search space: the benchmark
// measures execution scaling, not tuning quality, and tuning runs outside
// the timed regions.
func benchTuneOptions() *tune.Options {
	o := tune.DefaultOptions()
	o.LsCandidates = []int{20}
	o.TCandidates = []float64{2.5, 3.0}
	o.KCandidates = []int{4, 16, 60}
	o.MaxSampleSightings = 800
	return &o
}

// Run executes the full scaling suite.
func Run(cfg Config, progress func(format string, args ...any)) (*Report, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	rep := &Report{
		When:        time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  gomaxprocs(),
		GPUPaceUS:   float64(cfg.GPUPace.Nanoseconds()) / 1e3,
		DurationSec: cfg.DurationSec,
		SampleEvery: cfg.SampleEvery,
		NumGPUs:     cfg.NumGPUs,
		Seed:        cfg.Seed,
	}
	for _, n := range cfg.StreamCounts {
		p, err := runPoint(cfg, n, progress)
		if err != nil {
			return nil, fmt.Errorf("scalebench: %d streams: %w", n, err)
		}
		rep.Points = append(rep.Points, *p)
	}
	return rep, nil
}

// runPoint measures one stream count. Two independent systems replay the
// identical deterministic workload: one executes the cross-stream
// sequential reference paths (one stream at a time), the other the
// per-stream-worker fan-out. Within-stream GT-CNN batching across NumGPUs
// is active on both sides, so the query speedup isolates the cross-stream
// overlap. Selections are tuned once and shared so the timed regions
// contain only ingest and query work.
func runPoint(cfg Config, n int, progress func(string, ...any)) (*Point, error) {
	specs, err := streamSpecs(n)
	if err != nil {
		return nil, err
	}
	opts := focus.GenOptions{DurationSec: cfg.DurationSec, SampleEvery: cfg.SampleEvery}

	newSystem := func() (*focus.System, []*focus.Session, error) {
		sys, err := focus.New(focus.Config{
			Seed:    cfg.Seed,
			NumGPUs: cfg.NumGPUs,
			GPUPace: cfg.GPUPace,
			// The benchmark measures execution scaling, not accuracy:
			// lenient targets keep the trimmed sweep from rejecting every
			// candidate on short windows.
			Targets:     tune.Targets{Recall: 0.5, Precision: 0.5},
			TuneOptions: benchTuneOptions(),
		})
		if err != nil {
			return nil, nil, err
		}
		sessions := make([]*focus.Session, len(specs))
		for i, spec := range specs {
			if sessions[i], err = sys.AddStream(spec); err != nil {
				return nil, nil, err
			}
		}
		return sys, sessions, nil
	}

	seqSys, seqSessions, err := newSystem()
	if err != nil {
		return nil, err
	}
	defer seqSys.Close()
	parSys, parSessions, err := newSystem()
	if err != nil {
		return nil, err
	}
	defer parSys.Close()

	progress("  tuning %d streams (untimed)", n)
	for i, sess := range seqSessions {
		if err := sess.Tune(opts); err != nil {
			return nil, err
		}
		parSessions[i].UseSelection(sess.Selection())
	}

	p := &Point{Streams: n}

	progress("  ingest x%d sequential", n)
	t0 := time.Now()
	if err := seqSys.IngestAllWorkers(opts, 1); err != nil {
		return nil, err
	}
	p.IngestSeqSec = time.Since(t0).Seconds()

	progress("  ingest x%d parallel", n)
	t0 = time.Now()
	if err := parSys.IngestAll(opts); err != nil {
		return nil, err
	}
	p.IngestParSec = time.Since(t0).Seconds()
	if p.IngestParSec > 0 {
		p.IngestSpeedup = p.IngestSeqSec / p.IngestParSec
	}

	identical := true
	for i, sess := range seqSessions {
		st, pst := sess.IngestStats(), parSessions[i].IngestStats()
		p.Sightings += st.Sightings
		p.Clusters += st.Clusters
		if st != pst || sess.Index().NumClusters() != parSessions[i].Index().NumClusters() {
			identical = false
		}
	}

	// Cross-stream queries against cold GT-CNN caches on both systems.
	progress("  query x%d sequential vs parallel", n)
	var seqResults, parResults []*focus.Result
	t0 = time.Now()
	for _, class := range cfg.Classes {
		res, err := seqSys.Query(focus.Query{Class: class, Workers: 1})
		if err != nil {
			return nil, err
		}
		seqResults = append(seqResults, res)
	}
	p.QuerySeqSec = time.Since(t0).Seconds()

	t0 = time.Now()
	for _, class := range cfg.Classes {
		res, err := parSys.Query(focus.Query{Class: class})
		if err != nil {
			return nil, err
		}
		parResults = append(parResults, res)
	}
	p.QueryParSec = time.Since(t0).Seconds()
	if p.QueryParSec > 0 {
		p.QuerySpeedup = p.QuerySeqSec / p.QueryParSec
	}

	for qi, seq := range seqResults {
		par := parResults[qi]
		p.QueryFrames += seq.TotalFrames
		if !sameResult(seq, par) {
			identical = false
		}
	}
	p.Identical = identical
	return p, nil
}

// sameResult compares two cross-stream results field by field.
func sameResult(a, b *focus.Result) bool {
	if a.Class != b.Class || a.TotalFrames != b.TotalFrames ||
		a.LatencyMS != b.LatencyMS || a.GPUTimeMS != b.GPUTimeMS ||
		len(a.PerStream) != len(b.PerStream) {
		return false
	}
	for name, sa := range a.PerStream {
		sb, ok := b.PerStream[name]
		if !ok {
			return false
		}
		if sa.ExaminedClusters != sb.ExaminedClusters ||
			sa.MatchedClusters != sb.MatchedClusters ||
			sa.GTInferences != sb.GTInferences ||
			sa.LatencyMS != sb.LatencyMS ||
			len(sa.Frames) != len(sb.Frames) ||
			len(sa.Segments) != len(sb.Segments) {
			return false
		}
		for i := range sa.Frames {
			if sa.Frames[i] != sb.Frames[i] {
				return false
			}
		}
		for i := range sa.Segments {
			if sa.Segments[i] != sb.Segments[i] {
				return false
			}
		}
	}
	return true
}

// AppendJSON appends the report to the trajectory file at path, creating it
// when absent.
func AppendJSON(path string, rep *Report) error {
	var tr trajectory
	if data, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file starts a fresh trajectory rather than
		// failing the benchmark.
		_ = json.Unmarshal(data, &tr)
	}
	tr.Runs = append(tr.Runs, rep)
	data, err := json.MarshalIndent(&tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
