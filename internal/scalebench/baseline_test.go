package scalebench

import (
	"os"
	"path/filepath"
	"testing"
)

func testBaseline() *Baseline {
	return &Baseline{
		Tolerance: 0.20,
		Points: []BaselinePoint{
			{Streams: 1, IngestSpeedup: 1.0, QuerySpeedup: 1.0},
			{Streams: 4, IngestSpeedup: 2.0, QuerySpeedup: 2.5},
		},
	}
}

func freshReport() *Report {
	return &Report{Points: []Point{
		{Streams: 1, IngestSpeedup: 1.0, QuerySpeedup: 0.98, Identical: true},
		{Streams: 4, IngestSpeedup: 2.1, QuerySpeedup: 2.4, Identical: true},
	}}
}

func TestBaselineCheckPasses(t *testing.T) {
	if failures := testBaseline().Check(freshReport()); len(failures) != 0 {
		t.Fatalf("healthy run failed the gate: %v", failures)
	}
}

func TestBaselineCheckCatchesRegression(t *testing.T) {
	rep := freshReport()
	rep.Points[1].QuerySpeedup = 1.9 // below 2.5 * 0.8 = 2.0
	failures := testBaseline().Check(rep)
	if len(failures) != 1 {
		t.Fatalf("want exactly the query regression, got %v", failures)
	}
}

func TestBaselineCheckWithinToleranceIsFine(t *testing.T) {
	rep := freshReport()
	rep.Points[1].IngestSpeedup = 1.65 // above 2.0 * 0.8 = 1.6: a <20% loss
	if failures := testBaseline().Check(rep); len(failures) != 0 {
		t.Fatalf("loss within tolerance must pass: %v", failures)
	}
}

func TestBaselineCheckCatchesMissingPointAndNonIdentical(t *testing.T) {
	rep := freshReport()
	rep.Points = rep.Points[:1]
	rep.Points[0].Identical = false
	failures := testBaseline().Check(rep)
	if len(failures) != 2 {
		t.Fatalf("want non-identical + missing point, got %v", failures)
	}
}

func TestBaselineCheckFlagsUnbaselinedNonIdentical(t *testing.T) {
	rep := freshReport()
	rep.Points = append(rep.Points,
		Point{Streams: 16, IngestSpeedup: 3.9, QuerySpeedup: 3.1, Identical: false})
	failures := testBaseline().Check(rep)
	if len(failures) != 1 {
		t.Fatalf("want the unbaselined non-identical point flagged, got %v", failures)
	}
}

func rawBaseline() *Baseline {
	b := testBaseline()
	b.Raw = &RawBaseline{IVFSpeedup: 2.0, EarlyExitMaxRatio: 0.5}
	return b
}

func rawReport() *Report {
	rep := freshReport()
	rep.Raw = &RawReport{IVFSpeedup: 2.1, IVFIdentical: true, EarlyExitRatio: 0.4, EarlyExitItems: 10}
	return rep
}

func TestBaselineCheckRawPasses(t *testing.T) {
	if failures := rawBaseline().Check(rawReport()); len(failures) != 0 {
		t.Fatalf("healthy raw run failed the gate: %v", failures)
	}
	// A <20% IVF loss stays within the shared tolerance.
	rep := rawReport()
	rep.Raw.IVFSpeedup = 1.65 // above 2.0 * 0.8 = 1.6
	if failures := rawBaseline().Check(rep); len(failures) != 0 {
		t.Fatalf("IVF loss within tolerance must pass: %v", failures)
	}
}

func TestBaselineCheckRawCatchesRegressions(t *testing.T) {
	rep := rawReport()
	rep.Raw.IVFSpeedup = 1.5 // below 2.0 * 0.8
	if failures := rawBaseline().Check(rep); len(failures) != 1 {
		t.Fatalf("want exactly the IVF speedup regression, got %v", failures)
	}
	rep = rawReport()
	rep.Raw.EarlyExitRatio = 0.51 // the ceiling is absolute, no tolerance
	if failures := rawBaseline().Check(rep); len(failures) != 1 {
		t.Fatalf("want exactly the early-exit ratio violation, got %v", failures)
	}
	rep = rawReport()
	rep.Raw = nil
	if failures := rawBaseline().Check(rep); len(failures) != 1 {
		t.Fatalf("want exactly the missing raw measurement, got %v", failures)
	}
}

func TestBaselineCheckRawIdentityIsUnconditional(t *testing.T) {
	// Even without a raw baseline, a non-identical IVF run is a
	// correctness failure.
	rep := rawReport()
	rep.Raw.IVFIdentical = false
	if failures := testBaseline().Check(rep); len(failures) != 1 {
		t.Fatalf("want the identity violation without a raw baseline, got %v", failures)
	}
	if failures := rawBaseline().Check(rep); len(failures) != 1 {
		t.Fatalf("want the identity violation with a raw baseline, got %v", failures)
	}
}

func TestLoadBaselineAndLatestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, []byte(`{
		"tolerance": 0.2,
		"points": [{"streams": 1, "ingest_speedup": 1, "query_speedup": 1}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if b.Tolerance != 0.2 || len(b.Points) != 1 {
		t.Fatalf("loaded %+v", b)
	}

	trajPath := filepath.Join(dir, "traj.json")
	if err := AppendJSON(trajPath, &Report{When: "a", Points: []Point{{Streams: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := AppendJSON(trajPath, &Report{When: "b", Points: []Point{{Streams: 4}}}); err != nil {
		t.Fatal(err)
	}
	rep, err := LatestRun(trajPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.When != "b" || rep.Points[0].Streams != 4 {
		t.Fatalf("latest run %+v, want the second append", rep)
	}

	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline must error")
	}
	if _, err := LatestRun(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing trajectory must error")
	}
}
