package scalebench

import (
	"fmt"
	"reflect"
	"time"

	"focus"
	"focus/internal/cluster"
	"focus/internal/simrand"
	"focus/internal/tune"
	"focus/internal/video"
	"focus/internal/vision"
)

// RawReport measures the single-node raw-speed features that don't scale
// with stream count: the IVF centroid index against the linear
// nearest-centroid scan it replaced (same workload, bit-identical final
// engine state enforced), and an early-exit ranked query against the
// exact execution of the same compound plan (GPU-cost ratio on cold
// verdict caches). Appended to the trajectory alongside the scaling
// points so both regressions show up in the same file the CI gate reads.
type RawReport struct {
	// IVFAdds is the number of timed Add calls per engine.
	IVFAdds      int     `json:"ivf_adds"`
	IVFLinearSec float64 `json:"ivf_linear_sec"`
	IVFIndexSec  float64 `json:"ivf_index_sec"`
	// IVFSpeedup is linear-scan wall time over IVF wall time (>1 = faster).
	IVFSpeedup float64 `json:"ivf_speedup"`
	// IVFIdentical reports that both engines finished the workload in
	// bit-identical states (same clusters, members, centroids, spill
	// sequence) — the exactness contract, re-proven on every bench run.
	IVFIdentical bool `json:"ivf_identical"`

	ExactGPUMS float64 `json:"exact_gpu_ms"`
	EarlyGPUMS float64 `json:"early_exit_gpu_ms"`
	// EarlyExitRatio is early-exit GPU cost over exact GPU cost for the
	// same compound TopK query on identically ingested fresh systems.
	EarlyExitRatio float64 `json:"early_exit_gpu_ratio"`
	// EarlyExitItems is how many verified results the early-exit run
	// returned (must equal the requested TopK on this corpus).
	EarlyExitItems int `json:"early_exit_items"`
}

// Raw-bench workload constants. The IVF side mirrors the regime real
// streams live in — a stable population of repeat appearances, joins
// dominating — at a population size where the coarse quantizer visibly
// beats the linear scan. The early-exit side replays the planted
// rare-class corpus from the top-level invariant tests at bench scale.
const (
	rawMaxActive = 512
	rawInstances = 400
	rawAdds      = 20000
	rawTopK      = 10
	rawExpr      = "car & person & !bus"
	rawWindowSec = 60
)

// RunRaw executes the raw-speed suite.
func RunRaw(seed uint64, progress func(format string, args ...any)) (*RawReport, error) {
	if progress == nil {
		progress = func(string, ...any) {}
	}
	rep := &RawReport{IVFAdds: rawAdds}

	progress("  ivf: %d adds over %d instances (cap %d), linear vs indexed",
		rawAdds, rawInstances, rawMaxActive)
	if err := rep.runIVF(seed); err != nil {
		return nil, err
	}
	progress("  ivf: linear %.2fs, indexed %.2fs, %.2fx, identical=%v",
		rep.IVFLinearSec, rep.IVFIndexSec, rep.IVFSpeedup, rep.IVFIdentical)

	progress("  early-exit: %q top-%d, exact vs sampled on fresh systems", rawExpr, rawTopK)
	if err := rep.runEarlyExit(seed); err != nil {
		return nil, err
	}
	progress("  early-exit: exact %.0f GPU-ms, sampled %.0f GPU-ms, ratio %.2f (%d items)",
		rep.ExactGPUMS, rep.EarlyGPUMS, rep.EarlyExitRatio, rep.EarlyExitItems)
	return rep, nil
}

// runIVF drives two engines differing only in Config.LinearScan through an
// identical deterministic workload, timing the steady-state Add loop.
func (rep *RawReport) runIVF(seed uint64) error {
	sp := vision.NewSpace(seed)
	model := vision.NewZoo().ByName("resnet18")
	src := simrand.New(seed).Derive("scalebench-raw-ivf")
	feats := make([]vision.FeatureVec, rawInstances)
	for i := range feats {
		inst := sp.NewInstanceAppearance(vision.ClassID(i%40), src)
		feats[i] = model.ExtractFeatures(inst, src)
	}
	mem := func(i int) cluster.Member {
		return cluster.Member{
			Object:  video.ObjectID(i),
			Frame:   video.FrameID(i),
			TimeSec: float64(i) / 30,
			Seed:    int64(i),
		}
	}

	type spillMark struct {
		id   int64
		size int
	}
	run := func(linear bool) (float64, cluster.EngineSnapshot, []spillMark, error) {
		var spills []spillMark
		e, err := cluster.NewEngine(cluster.Config{
			Threshold: 2.0, MaxActive: rawMaxActive, LinearScan: linear,
		}, func(c *cluster.Cluster) {
			spills = append(spills, spillMark{c.ID, c.Size()})
		})
		if err != nil {
			return 0, cluster.EngineSnapshot{}, nil, err
		}
		for i := 0; i < 2*rawInstances; i++ { // reach steady state untimed
			e.Add(feats[i%rawInstances], mem(i), nil)
		}
		t0 := time.Now()
		for i := 0; i < rawAdds; i++ {
			e.Add(feats[i%rawInstances], mem(2*rawInstances+i), nil)
		}
		return time.Since(t0).Seconds(), e.Snapshot(), spills, nil
	}

	linSec, linSnap, linSpills, err := run(true)
	if err != nil {
		return err
	}
	ivfSec, ivfSnap, ivfSpills, err := run(false)
	if err != nil {
		return err
	}
	rep.IVFLinearSec, rep.IVFIndexSec = linSec, ivfSec
	if ivfSec > 0 {
		rep.IVFSpeedup = linSec / ivfSec
	}
	rep.IVFIdentical = reflect.DeepEqual(linSnap, ivfSnap) &&
		reflect.DeepEqual(linSpills, ivfSpills)
	return nil
}

// rawCorpusSpecs is the planted-rare-class corpus: one stream where the
// query classes are abundant head classes, three where they are deep-tail
// rarities. The corpus the early-exit invariant tests pin their ≤50%
// GPU-cost contract on, reproduced here so the bench tracks the same
// quantity across revisions.
func rawCorpusSpecs() []video.StreamSpec {
	hot := video.StreamSpec{
		Name: "hotlot", Type: video.Traffic, Location: "bench",
		Description: "planted-abundant stream",
		VocabSize:   40, ZipfAlpha: 2.2, ArrivalPerSec: 0.9,
		DwellMeanSec: 8, DwellJitter: 0.5, EmptyFrac: 0.25, NightFactor: 0.4,
		SpeedPxPerFrame: 2.4, PoseDriftTau: 0.6, PoseDriftAmp: 0.55,
	}
	cold := func(name string) video.StreamSpec {
		return video.StreamSpec{
			Name: name, Type: video.Traffic, Location: "bench",
			Description: "planted-rare stream",
			VocabSize:   280, ZipfAlpha: 1.3, ArrivalPerSec: 0.35,
			DwellMeanSec: 10, DwellJitter: 0.5, EmptyFrac: 0.3, NightFactor: 0.4,
			SpeedPxPerFrame: 2.0, PoseDriftTau: 0.5, PoseDriftAmp: 0.5,
		}
	}
	return []video.StreamSpec{hot, cold("plaza_a"), cold("plaza_b"), cold("plaza_c")}
}

// runEarlyExit ingests the planted corpus into two fresh systems (cold
// GT-verdict caches on both) and compares the metered GPU cost of the
// exact and early-exit executions of the same compound TopK query.
func (rep *RawReport) runEarlyExit(seed uint64) error {
	newSystem := func() (*focus.System, error) {
		sys, err := focus.New(focus.Config{
			Seed:        seed,
			NumGPUs:     10,
			Targets:     tune.Targets{Recall: 0.5, Precision: 0.5},
			TuneOptions: benchTuneOptions(),
		})
		if err != nil {
			return nil, err
		}
		for _, spec := range rawCorpusSpecs() {
			if _, err := sys.AddStream(spec); err != nil {
				return nil, err
			}
		}
		if err := sys.IngestAll(focus.GenOptions{DurationSec: rawWindowSec, SampleEvery: 1}); err != nil {
			return nil, err
		}
		return sys, nil
	}

	exactSys, err := newSystem()
	if err != nil {
		return err
	}
	defer exactSys.Close()
	earlySys, err := newSystem()
	if err != nil {
		return err
	}
	defer earlySys.Close()

	before := exactSys.GPUMeter()
	exact, err := exactSys.PlanQuery(rawExpr, focus.PlanOptions{TopK: rawTopK})
	if err != nil {
		return err
	}
	rep.ExactGPUMS = exactSys.GPUMeter().QueryMS - before.QueryMS

	before = earlySys.GPUMeter()
	early, err := earlySys.PlanQuery(rawExpr, focus.PlanOptions{TopK: rawTopK, EarlyExit: true})
	if err != nil {
		return err
	}
	rep.EarlyGPUMS = earlySys.GPUMeter().QueryMS - before.QueryMS
	rep.EarlyExitItems = len(early.Items)

	if len(exact.Items) != rawTopK {
		return fmt.Errorf("scalebench: exact top-%d found only %d items on the planted corpus",
			rawTopK, len(exact.Items))
	}
	if rep.ExactGPUMS <= 0 {
		return fmt.Errorf("scalebench: exact execution consumed no GPU time; the meter is broken")
	}
	rep.EarlyExitRatio = rep.EarlyGPUMS / rep.ExactGPUMS
	return nil
}
