package tune

import (
	"sort"

	"focus/internal/cluster"
	"focus/internal/parallel"
	"focus/internal/video"
	"focus/internal/vision"
)

// sweepMaxRank caps how many ranked entries per inference feed the
// estimation (the largest K candidate is below this).
const sweepMaxRank = 256

// sweepMaxActiveClusters is the active-cluster cap used during estimation
// clustering passes (smaller than production for sweep speed).
const sweepMaxActiveClusters = 128

// evaluateModel estimates every (K, T) candidate for one ingest model. The
// classification pass fans out per sample sighting and the candidate grid
// fans out per clustering threshold; both collect into index-addressed
// slots, so the candidate order (T outer, K inner) matches the sequential
// path exactly.
func evaluateModel(st *video.Stream, space *vision.Space, m *vision.Model, ls int, sample []sampleItem, hist map[vision.ClassID]int, res *SweepResult, opts Options, workers int) ([]Candidate, error) {
	// One classification pass per model; outputs are reused across T.
	kMax := sweepMaxRank
	if v := m.Vocabulary() + 1; v < kMax {
		kMax = v
	}
	outputs := make([]*vision.Output, len(sample))
	parallel.ForEach(workers, len(sample), func(i int) error {
		s := &sample[i].sighting
		outputs[i] = m.Classify(space, s.TrueClass, s.Appearance,
			st.CNNSource(s.Seed, m.Name),
			st.CNNSource(int64(s.Object), m.Name+"#rank"), kMax)
		return nil
	})

	tCands := opts.TCandidates
	if opts.DisableClustering {
		tCands = []float64{0}
	}
	kCands := clampKs(opts.KCandidates, m)

	normIngest := m.CostMS() * (1 - res.DedupRate) / vision.GTCostMS

	perT, err := parallel.Map(workers, len(tCands), func(ti int) ([]Candidate, error) {
		t := tCands[ti]
		clusters := simulateClustering(sample, outputs, t, opts)
		out := make([]Candidate, 0, len(kCands))
		for _, k := range kCands {
			est := estimateAtK(clusters, k, res.DominantClasses, hist, res.SampleSightings)
			out = append(out, Candidate{
				Model:        m,
				Ls:           ls,
				K:            k,
				T:            t,
				EstRecall:    est.recall,
				EstPrecision: est.precision,
				NormIngest:   normIngest,
				NormQuery:    est.normQuery,
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Candidate
	for _, cands := range perT {
		out = append(out, cands...)
	}
	return out, nil
}

// clampKs restricts K candidates to the model's output vocabulary and
// deduplicates after clamping.
func clampKs(ks []int, m *vision.Model) []int {
	vocab := m.Vocabulary()
	if m.Specialized {
		vocab++ // OTHER
	}
	seen := map[int]bool{}
	var out []int
	for _, k := range ks {
		if k > vocab {
			k = vocab
		}
		if k >= 1 && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// simCluster is the estimation view of one cluster.
type simCluster struct {
	// classPos maps each class in the cluster's aggregated ranking to its
	// 1-based position; the cluster is retrieved for class X at width K
	// iff classPos[X] <= K.
	classPos map[vision.ClassID]int
	// repGT is the GT label of the cluster's representative.
	repGT vision.ClassID
	// gtCount counts members per GT label; total is the member count.
	gtCount map[vision.ClassID]int
	total   int
}

// simulateClustering replays the ingest clustering (including pixel-diff
// deduplication) over the sample and summarizes the resulting clusters.
func simulateClustering(sample []sampleItem, outputs []*vision.Output, t float64, opts Options) []*simCluster {
	threshold := t
	if threshold <= 0 {
		threshold = 1e-9
	}
	gtBySeed := make(map[int64]vision.ClassID, len(sample))
	for i := range sample {
		gtBySeed[sample[i].sighting.Seed] = sample[i].gtLabel
	}

	var sims []*simCluster
	spill := func(c *cluster.Cluster) {
		sc := &simCluster{
			classPos: make(map[vision.ClassID]int),
			gtCount:  make(map[vision.ClassID]int),
			repGT:    gtBySeed[c.Representative().Seed],
			total:    c.Size(),
		}
		for i, p := range c.TopK(1 << 20) {
			sc.classPos[p.Class] = i + 1
		}
		for _, m := range c.Members {
			sc.gtCount[gtBySeed[m.Seed]]++
		}
		sims = append(sims, sc)
	}
	eng, err := cluster.NewEngine(cluster.Config{
		Threshold:      threshold,
		MaxActive:      sweepMaxActiveClusters,
		IdleTimeoutSec: 20,
		MaxMembers:     128,
	}, spill)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}

	lastCluster := make(map[video.ObjectID]*cluster.Cluster)
	for i := range sample {
		s := &sample[i].sighting
		member := cluster.Member{
			Object:    s.Object,
			Frame:     s.Frame,
			TimeSec:   s.TimeSec,
			TrueClass: s.TrueClass,
			Seed:      s.Seed,
		}
		if opts.PixelDiffThreshold > 0 && s.TrackFrame > 0 && s.PixelDist <= opts.PixelDiffThreshold {
			if prev, ok := lastCluster[s.Object]; ok && eng.AddDeduplicated(prev, member) {
				continue
			}
		}
		lastCluster[s.Object] = eng.Add(outputs[i].Features, member, outputs[i].Ranked)
	}
	eng.Flush()
	return sims
}

// classEstimate aggregates sample estimates for one (T, K) configuration.
type classEstimate struct {
	recall    float64
	precision float64
	normQuery float64
}

// estimateAtK computes the expected per-class recall, precision and query
// cost at top-K width k, averaged over the dominant classes.
func estimateAtK(clusters []*simCluster, k int, dominant []vision.ClassID, hist map[vision.ClassID]int, sampleSightings int) classEstimate {
	var recallSum, precSum, weightSum float64
	var retrievedSum float64
	for _, x := range dominant {
		var retrieved, returnedPos, returnedAll int
		for _, c := range clusters {
			pos, ok := c.classPos[x]
			if !ok || pos > k {
				continue
			}
			retrieved++
			if c.repGT == x {
				returnedPos += c.gtCount[x]
				returnedAll += c.total
			}
		}
		positives := hist[x]
		recall := 1.0
		if positives > 0 {
			recall = float64(returnedPos) / float64(positives)
		}
		precision := 1.0
		if returnedAll > 0 {
			precision = float64(returnedPos) / float64(returnedAll)
		}
		w := float64(positives)
		recallSum += w * recall
		precSum += w * precision
		weightSum += w
		retrievedSum += float64(retrieved)
	}
	est := classEstimate{recall: 1, precision: 1}
	if weightSum > 0 {
		est.recall = recallSum / weightSum
		est.precision = precSum / weightSum
	}
	if sampleSightings > 0 && len(dominant) > 0 {
		// Mean retrieved clusters per dominant-class query, normalized to
		// Query-all's one-GT-inference-per-sighting work.
		est.normQuery = retrievedSum / float64(len(dominant)) / float64(sampleSightings)
	}
	return est
}
