package tune

import (
	"fmt"
	"sort"
)

// Select picks a configuration meeting the targets under the given policy
// (§4.4): it filters the sweep's candidates by viability, computes the
// ingest/query Pareto boundary, and chooses the boundary point the policy
// asks for.
func (sw *SweepResult) Select(targets Targets, policy Policy) (*Selection, error) {
	if targets.Recall <= 0 || targets.Recall > 1 || targets.Precision <= 0 || targets.Precision > 1 {
		return nil, fmt.Errorf("tune: invalid targets %+v", targets)
	}
	// Estimates carry sampling error; demand a small margin above the
	// target so the full run still meets it. At very high targets the
	// margin shrinks so the estimate can still reach it.
	margin := 0.01
	if room := 1 - targets.Recall; room < 2*margin {
		margin = room / 2
	}
	adjusted := Targets{Recall: targets.Recall + margin, Precision: targets.Precision}
	filter := func(t Targets) []Candidate {
		var out []Candidate
		for _, c := range sw.Candidates {
			// A configuration whose ingest cost approaches Ingest-all is
			// dominated by the Ingest-all baseline itself (which has zero
			// query latency); don't let any policy drift there.
			if c.NormIngest > maxSaneNormIngest {
				continue
			}
			if c.Viable(t) {
				out = append(out, c)
			}
		}
		return out
	}
	viable := filter(adjusted)
	if len(viable) == 0 {
		viable = filter(targets)
	}
	if len(viable) == 0 {
		return nil, fmt.Errorf("tune: no configuration of stream %q meets recall %.2f / precision %.2f; relax the targets",
			sw.Stream, targets.Recall, targets.Precision)
	}
	pareto := ParetoBoundary(viable)

	sel := &Selection{Viable: viable, Pareto: pareto}
	switch policy {
	case OptIngest:
		// Minimize ingest cost; among near-ties (within tieSlack), prefer
		// the better query latency. This is the paper's "sharp improvement
		// in one cost for a small worsening of the other": a hair of extra
		// ingest is worth a big query win.
		sel.Chosen = bestWithin(pareto,
			func(c Candidate) float64 { return c.NormIngest },
			func(c Candidate) float64 { return c.NormQuery })
	case OptQuery:
		sel.Chosen = bestWithin(pareto,
			func(c Candidate) float64 { return c.NormQuery },
			func(c Candidate) float64 { return c.NormIngest })
	case Balance, "":
		best := 0
		bestSum := pareto[0].NormIngest + pareto[0].NormQuery
		for i, c := range pareto[1:] {
			if sum := c.NormIngest + c.NormQuery; sum < bestSum {
				bestSum = sum
				best = i + 1
			}
		}
		sel.Chosen = pareto[best]
	default:
		return nil, fmt.Errorf("tune: unknown policy %q", policy)
	}
	return sel, nil
}

// tieSlack is the relative margin within which two costs count as a tie
// during policy selection.
const tieSlack = 0.10

// maxSaneNormIngest excludes configurations whose ingest cost exceeds a
// quarter of Ingest-all's: beyond that, simply running the GT-CNN at
// ingest (zero query latency) is the better system.
const maxSaneNormIngest = 0.25

// bestWithin minimizes primary, breaking near-ties (within tieSlack
// relative) by the secondary metric.
func bestWithin(cands []Candidate, primary, secondary func(Candidate) float64) Candidate {
	best := cands[0]
	min := primary(best)
	for _, c := range cands[1:] {
		if p := primary(c); p < min {
			min = p
			best = c
		}
	}
	for _, c := range cands {
		if primary(c) <= min*(1+tieSlack) && secondary(c) < secondary(best) {
			best = c
		}
	}
	return best
}

// ParetoBoundary returns the Pareto-efficient candidates over
// (NormIngest, NormQuery), ascending by NormIngest (and therefore
// descending by NormQuery). Dominated candidates — those for which some
// other candidate is no worse on both axes and better on one — are
// excluded (§4.4, Figure 6).
func ParetoBoundary(cands []Candidate) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].NormIngest != sorted[j].NormIngest {
			return sorted[i].NormIngest < sorted[j].NormIngest
		}
		return sorted[i].NormQuery < sorted[j].NormQuery
	})
	var out []Candidate
	bestQuery := sorted[0].NormQuery + 1
	for _, c := range sorted {
		if c.NormQuery < bestQuery {
			out = append(out, c)
			bestQuery = c.NormQuery
		}
	}
	return out
}
