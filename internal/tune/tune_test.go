package tune

import (
	"testing"

	"focus/internal/video"
	"focus/internal/vision"
)

func testSweep(t *testing.T, stream string, opts Options, genOpts video.GenOptions) *SweepResult {
	t.Helper()
	space := vision.NewSpace(1)
	spec, ok := video.SpecByName(stream)
	if !ok {
		t.Fatalf("no spec %q", stream)
	}
	st, err := video.NewStream(spec, space, 42)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Sweep(st, space, vision.NewZoo(), opts, genOpts)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestOptionsValidation(t *testing.T) {
	space := vision.NewSpace(1)
	spec, _ := video.SpecByName("bend")
	st, _ := video.NewStream(spec, space, 1)
	zoo := vision.NewZoo()
	genOpts := video.GenOptions{DurationSec: 30, SampleEvery: 1}

	bad := []Options{
		func() Options { o := DefaultOptions(); o.SampleFraction = 0; return o }(),
		func() Options { o := DefaultOptions(); o.SampleFraction = 1.5; return o }(),
		func() Options { o := DefaultOptions(); o.SampleWindows = 0; return o }(),
		func() Options { o := DefaultOptions(); o.TCandidates = nil; return o }(),
		func() Options { o := DefaultOptions(); o.KCandidates = nil; return o }(),
	}
	for i, o := range bad {
		if _, err := Sweep(st, space, zoo, o, genOpts); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
}

func TestSweepProducesCandidates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	opts := DefaultOptions()
	sw := testSweep(t, "auburn_c", opts, video.GenOptions{DurationSec: 180, SampleEvery: 1})
	if sw.SampleSightings == 0 || sw.TotalSightings <= sw.SampleSightings {
		t.Fatalf("sample %d of %d", sw.SampleSightings, sw.TotalSightings)
	}
	if sw.SampleSightings > opts.MaxSampleSightings {
		t.Errorf("sample %d exceeds cap %d", sw.SampleSightings, opts.MaxSampleSightings)
	}
	if len(sw.DominantClasses) == 0 {
		t.Fatal("no dominant classes")
	}
	if len(sw.Candidates) < 50 {
		t.Fatalf("only %d candidates", len(sw.Candidates))
	}
	if sw.EstimationGPUMS <= 0 {
		t.Error("no estimation cost recorded")
	}
	// Sanity of estimates.
	for _, c := range sw.Candidates {
		if c.EstRecall < 0 || c.EstRecall > 1 || c.EstPrecision < 0 || c.EstPrecision > 1 {
			t.Fatalf("estimate out of range: %+v", c)
		}
		if c.NormIngest <= 0 || c.NormQuery < 0 {
			t.Fatalf("cost out of range: %+v", c)
		}
	}
	// Specialized candidates must exist and be cheaper at ingest than the
	// generic candidates using the same base.
	hasSpec := false
	for _, c := range sw.Candidates {
		if c.Model.Specialized {
			hasSpec = true
			break
		}
	}
	if !hasSpec {
		t.Error("no specialized candidates in sweep")
	}
}

func TestRecallMonotoneInK(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	sw := testSweep(t, "auburn_c", DefaultOptions(), video.GenOptions{DurationSec: 120, SampleEvery: 1})
	// Group candidates by (model, T) and check recall and query cost are
	// non-decreasing in K.
	type key struct {
		name string
		t    float64
	}
	byCfg := map[key][]Candidate{}
	for _, c := range sw.Candidates {
		k := key{c.Model.Name, c.T}
		byCfg[k] = append(byCfg[k], c)
	}
	for k, cs := range byCfg {
		for i := 1; i < len(cs); i++ {
			if cs[i].K < cs[i-1].K {
				t.Fatalf("%v: candidates not K-ordered", k)
			}
			if cs[i].EstRecall < cs[i-1].EstRecall-1e-9 {
				t.Errorf("%v: recall decreased from K=%d to K=%d (%.3f -> %.3f)",
					k, cs[i-1].K, cs[i].K, cs[i-1].EstRecall, cs[i].EstRecall)
			}
			if cs[i].NormQuery < cs[i-1].NormQuery-1e-12 {
				t.Errorf("%v: query cost decreased with larger K", k)
			}
		}
	}
}

func TestSelectPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	sw := testSweep(t, "auburn_c", DefaultOptions(), video.GenOptions{DurationSec: 180, SampleEvery: 1})
	targets := DefaultTargets

	balance, err := sw.Select(targets, Balance)
	if err != nil {
		t.Fatal(err)
	}
	optI, err := sw.Select(targets, OptIngest)
	if err != nil {
		t.Fatal(err)
	}
	optQ, err := sw.Select(targets, OptQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []*Selection{balance, optI, optQ} {
		if !sel.Chosen.Viable(targets) {
			t.Fatalf("chosen candidate not viable: %+v", sel.Chosen)
		}
	}
	// Policy ordering (§4.4): Opt-Ingest has the cheapest ingest,
	// Opt-Query the cheapest query, Balance in between on both axes.
	if optI.Chosen.NormIngest > balance.Chosen.NormIngest+1e-12 {
		t.Errorf("OptIngest ingest %.5f > Balance %.5f", optI.Chosen.NormIngest, balance.Chosen.NormIngest)
	}
	if optQ.Chosen.NormQuery > balance.Chosen.NormQuery+1e-12 {
		t.Errorf("OptQuery query %.5f > Balance %.5f", optQ.Chosen.NormQuery, balance.Chosen.NormQuery)
	}
	if optI.Chosen.NormQuery < balance.Chosen.NormQuery-1e-12 {
		t.Errorf("OptIngest should not beat Balance on query latency")
	}
	// Default policy is Balance.
	def, err := sw.Select(targets, "")
	if err != nil {
		t.Fatal(err)
	}
	if def.Chosen != balance.Chosen {
		t.Error("empty policy != Balance")
	}
	if _, err := sw.Select(targets, Policy("bogus")); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := sw.Select(Targets{Recall: 0, Precision: 0.5}, Balance); err == nil {
		t.Error("invalid targets accepted")
	}
}

func TestParetoBoundary(t *testing.T) {
	cands := []Candidate{
		{NormIngest: 0.01, NormQuery: 0.10},
		{NormIngest: 0.02, NormQuery: 0.05},
		{NormIngest: 0.03, NormQuery: 0.07}, // dominated by the 0.02 point
		{NormIngest: 0.04, NormQuery: 0.01},
		{NormIngest: 0.05, NormQuery: 0.01}, // dominated (same query, worse ingest)
	}
	p := ParetoBoundary(cands)
	if len(p) != 3 {
		t.Fatalf("pareto size = %d, want 3: %+v", len(p), p)
	}
	for i := 1; i < len(p); i++ {
		if p[i].NormIngest <= p[i-1].NormIngest || p[i].NormQuery >= p[i-1].NormQuery {
			t.Fatalf("pareto not strictly ordered at %d", i)
		}
	}
	if ParetoBoundary(nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestHigherTargetsNeedLargerK(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	// §6.5: higher accuracy targets keep ingest cost roughly flat but
	// increase query-time work (larger K).
	sw := testSweep(t, "auburn_c", DefaultOptions(), video.GenOptions{DurationSec: 180, SampleEvery: 1})
	lo, err := sw.Select(Targets{Recall: 0.95, Precision: 0.95}, Balance)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := sw.Select(Targets{Recall: 0.99, Precision: 0.95}, Balance)
	if err != nil {
		t.Skipf("99%% recall unattainable on this sample: %v", err)
	}
	if hi.Chosen.NormQuery < lo.Chosen.NormQuery-1e-12 {
		t.Errorf("99%% target query cost %.5f below 95%% target %.5f",
			hi.Chosen.NormQuery, lo.Chosen.NormQuery)
	}
}

func TestImpossibleTargets(t *testing.T) {
	sw := testSweep(t, "bend", DefaultOptions(), video.GenOptions{DurationSec: 120, SampleEvery: 1})
	if _, err := sw.Select(Targets{Recall: 0.99999, Precision: 0.99999}, Balance); err == nil {
		t.Skip("sample small enough that perfect estimates are possible")
	}
}

func TestAblationModes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	genOpts := video.GenOptions{DurationSec: 120, SampleEvery: 1}
	full := testSweep(t, "auburn_c", DefaultOptions(), genOpts)

	noSpec := DefaultOptions()
	noSpec.DisableSpecialization = true
	compOnly := testSweep(t, "auburn_c", noSpec, genOpts)
	for _, c := range compOnly.Candidates {
		if c.Model.Specialized {
			t.Fatal("specialized model in no-specialization sweep")
		}
	}

	noCluster := DefaultOptions()
	noCluster.DisableClustering = true
	flat := testSweep(t, "auburn_c", noCluster, genOpts)
	for _, c := range flat.Candidates {
		if c.T != 0 {
			t.Fatal("non-zero T in no-clustering sweep")
		}
	}

	// Each added technique must improve the best viable Balance sum
	// (Figure 8's cumulative gains).
	best := func(sw *SweepResult) float64 {
		sel, err := sw.Select(DefaultTargets, Balance)
		if err != nil {
			t.Fatalf("%s: %v", sw.Stream, err)
		}
		return sel.Chosen.NormIngest + sel.Chosen.NormQuery
	}
	bFull, bComp := best(full), best(compOnly)
	if bFull > bComp+1e-12 {
		t.Errorf("full search (%.5f) worse than compressed-only (%.5f)", bFull, bComp)
	}
	bFlat := best(flat)
	if bFull > bFlat+1e-12 {
		t.Errorf("full search (%.5f) worse than no-clustering (%.5f)", bFull, bFlat)
	}
}

func TestDedupEstimateBounds(t *testing.T) {
	sw := testSweep(t, "msnbc", DefaultOptions(), video.GenOptions{DurationSec: 120, SampleEvery: 1})
	if sw.DedupRate <= 0.05 || sw.DedupRate >= 0.9 {
		t.Errorf("news dedup estimate = %.2f, want in (0.05, 0.9)", sw.DedupRate)
	}
}

func BenchmarkSweep(b *testing.B) {
	space := vision.NewSpace(1)
	spec, _ := video.SpecByName("auburn_c")
	zoo := vision.NewZoo()
	genOpts := video.GenOptions{DurationSec: 120, SampleEvery: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := video.NewStream(spec, space, 42)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Sweep(st, space, zoo, DefaultOptions(), genOpts); err != nil {
			b.Fatal(err)
		}
	}
}
