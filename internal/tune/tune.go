// Package tune implements Focus's parameter selection (§4.4): choosing the
// cheap ingest CNN (CheapCNN_i), the top-K index width K, the
// specialization class count Ls, and the clustering threshold T so that
// user-specified precision and recall targets are met, then trading off
// ingest cost against query latency along the Pareto boundary.
//
// Following the paper, the tuner samples a representative fraction of the
// stream, labels the sampled objects with the GT-CNN as estimation ground
// truth, and computes the expected precision/recall and the expected
// ingest/query costs for every configuration in the search space. The
// expensive, target-independent part (Sweep) is separated from the cheap
// policy selection (Select) so sensitivity studies over accuracy targets
// reuse one sweep.
package tune

import (
	"fmt"
	"math"
	"sort"

	"focus/internal/parallel"
	"focus/internal/video"
	"focus/internal/vision"
)

// Targets are the user-specified accuracy floors (§3): both are measured
// against GT-CNN-derived ground truth.
type Targets struct {
	Recall    float64
	Precision float64
}

// DefaultTargets is the paper's default 95/95 setting.
var DefaultTargets = Targets{Recall: 0.95, Precision: 0.95}

// Policy selects the point on the ingest/query Pareto boundary (§4.4).
type Policy string

// The three policies of §4.4 / Figure 1.
const (
	Balance   Policy = "balance"    // minimize ingest + query cost (default)
	OptIngest Policy = "opt-ingest" // minimize ingest cost
	OptQuery  Policy = "opt-query"  // minimize query latency
)

// Options tunes the sweep.
type Options struct {
	// SampleFraction is the fraction of the stream sampled for estimation.
	SampleFraction float64
	// SampleWindows is how many contiguous windows the sample is split
	// into (contiguity preserves the pixel-diff and clustering temporal
	// structure).
	SampleWindows int
	// MaxSampleSightings caps the retained sample.
	MaxSampleSightings int
	// LsCandidates are the specialization sizes to try (§4.3).
	LsCandidates []int
	// TCandidates are clustering thresholds to try.
	TCandidates []float64
	// KCandidates are the top-K widths to try; values above a model's
	// vocabulary are clamped and deduplicated.
	KCandidates []int
	// PixelDiffThreshold estimates dedup savings; zero disables.
	PixelDiffThreshold float64
	// DisableSpecialization restricts the search to generic compressed
	// models (the "Compressed model" ablation of Figure 8).
	DisableSpecialization bool
	// DisableClustering evaluates every sighting as its own cluster (the
	// ablation without the clustering technique).
	DisableClustering bool
	// MaxDominantClasses bounds how many head classes the query-cost and
	// accuracy estimates average over.
	MaxDominantClasses int
	// Workers bounds the sweep's CPU fan-out across sample labelling,
	// candidate models and clustering thresholds. Zero sizes from
	// GOMAXPROCS; 1 forces the sequential reference path, which produces
	// bit-identical results.
	Workers int
}

// DefaultOptions returns the tuner defaults.
func DefaultOptions() Options {
	return Options{
		SampleFraction:     0.10,
		SampleWindows:      6,
		MaxSampleSightings: 2500,
		LsCandidates:       []int{10, 20, 40},
		TCandidates:        []float64{2.0, 2.5, 3.0, 3.5},
		KCandidates:        []int{2, 4, 8, 16, 30, 60, 100, 150, 220},
		PixelDiffThreshold: 3.0,
		MaxDominantClasses: 4,
	}
}

func (o Options) validate() error {
	if o.SampleFraction <= 0 || o.SampleFraction > 1 {
		return fmt.Errorf("tune: sample fraction %v out of (0, 1]", o.SampleFraction)
	}
	if o.SampleWindows < 1 {
		return fmt.Errorf("tune: need at least one sample window")
	}
	if len(o.TCandidates) == 0 && !o.DisableClustering {
		return fmt.Errorf("tune: no clustering thresholds to try")
	}
	if len(o.KCandidates) == 0 {
		return fmt.Errorf("tune: no K values to try")
	}
	return nil
}

// Candidate is one configuration with its estimated accuracy and costs.
type Candidate struct {
	// Model is the ingest CNN; Ls is 0 for generic models.
	Model *vision.Model
	Ls    int
	K     int
	T     float64

	// EstRecall and EstPrecision are sample estimates against GT labels,
	// averaged over the dominant classes weighted by class frequency.
	EstRecall    float64
	EstPrecision float64
	// NormIngest is the expected ingest GPU cost normalized to Ingest-all
	// (i.e. 1/NormIngest is the "cheaper by" factor).
	NormIngest float64
	// NormQuery is the expected per-query GPU cost for a dominant class,
	// normalized to Query-all.
	NormQuery float64
}

// Viable reports whether the candidate meets the accuracy targets.
func (c Candidate) Viable(t Targets) bool {
	return c.EstRecall >= t.Recall && c.EstPrecision >= t.Precision
}

// Selection is the outcome of policy selection.
type Selection struct {
	Chosen Candidate
	// Pareto is the ingest/query Pareto boundary over viable candidates,
	// ascending by NormIngest (Figure 6's dashed line).
	Pareto []Candidate
	// Viable are all candidates meeting the targets (Figure 6's scatter).
	Viable []Candidate
}

// SweepResult holds target-independent estimates for every configuration.
type SweepResult struct {
	Stream     string
	Candidates []Candidate
	// DominantClasses are the head classes estimates were computed over.
	DominantClasses []vision.ClassID
	// SampleSightings is the retained sample size; TotalSightings the
	// full-window sighting count observed during sampling.
	SampleSightings int
	TotalSightings  int
	// DedupRate is the estimated pixel-diff deduplication rate.
	DedupRate float64
	// EstimationGPUMS is the GT-CNN time spent labelling the sample (the
	// paper treats this as amortized, infrequent work).
	EstimationGPUMS float64
}

// sampleItem is one retained sample sighting with its GT label.
type sampleItem struct {
	sighting video.Sighting
	gtLabel  vision.ClassID
}

// Sweep samples the stream and estimates accuracy and cost for every
// configuration in the option space.
func Sweep(st *video.Stream, space *vision.Space, zoo *vision.Zoo, opts Options, genOpts video.GenOptions) (*SweepResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.MaxDominantClasses <= 0 {
		opts.MaxDominantClasses = 4
	}
	sample, total, err := collectSample(st, opts, genOpts)
	if err != nil {
		return nil, err
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("tune: sample of stream %q contains no sightings", st.Spec.Name)
	}

	res := &SweepResult{
		Stream:          st.Spec.Name,
		SampleSightings: len(sample),
		TotalSightings:  total,
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = parallel.CPUWorkers(0)
	}

	// GT-label the sample (estimation ground truth, §4.4). Each label is an
	// independent inference with its own derived randomness source, so the
	// labelling fans out; the histogram and GPU accounting aggregate
	// serially afterwards to stay deterministic.
	gt := zoo.GT
	hist := make(map[vision.ClassID]int)
	parallel.ForEach(workers, len(sample), func(i int) error {
		s := &sample[i].sighting
		sample[i].gtLabel = gt.Top1Class(space, s.TrueClass, st.CNNSource(s.Seed, "gt"))
		return nil
	})
	for i := range sample {
		res.EstimationGPUMS += gt.CostMS()
		hist[sample[i].gtLabel]++
	}
	res.DominantClasses = dominantClasses(hist, opts.MaxDominantClasses)
	if len(res.DominantClasses) == 0 {
		return nil, fmt.Errorf("tune: no dominant classes in sample of %q", st.Spec.Name)
	}
	res.DedupRate = estimateDedup(sample, opts.PixelDiffThreshold)

	// Specialization class lists follow the sighting-weighted histogram:
	// query cost and recall are per sighting, and a few long-dwelling
	// objects can make a class dominant at query time even when it is rare
	// by object count.
	models, lsOf, err := candidateModels(zoo, hist, opts)
	if err != nil {
		return nil, err
	}
	// Every (model, T, K) estimate is independent: models fan out here, and
	// each model's classification pass and per-threshold clustering replays
	// fan out inside evaluateModel. Results are collected per model slot so
	// candidate order stays deterministic regardless of scheduling. The
	// worker budget divides across the two levels so the sweep's total
	// concurrency stays ~workers instead of multiplying.
	innerWorkers := workers / len(models)
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	perModel, err := parallel.Map(workers, len(models), func(i int) ([]Candidate, error) {
		m := models[i]
		return evaluateModel(st, space, m, lsOf[m], sample, hist, res, opts, innerWorkers)
	})
	if err != nil {
		return nil, err
	}
	for _, cands := range perModel {
		res.Candidates = append(res.Candidates, cands...)
	}
	if len(res.Candidates) == 0 {
		return nil, fmt.Errorf("tune: no candidates produced for %q", st.Spec.Name)
	}
	return res, nil
}

// collectSample generates the stream once, retaining sightings inside
// SampleWindows evenly spaced contiguous windows, and counting the total.
func collectSample(st *video.Stream, opts Options, genOpts video.GenOptions) ([]sampleItem, int, error) {
	dur := genOpts.DurationSec
	winLen := dur * opts.SampleFraction / float64(opts.SampleWindows)
	stride := dur / float64(opts.SampleWindows)
	inWindow := func(t float64) bool {
		off := math.Mod(t, stride)
		return off < winLen
	}
	var sample, fallback []sampleItem
	total := 0
	err := st.Generate(genOpts, func(f *video.Frame) error {
		total += len(f.Sightings)
		if len(f.Sightings) == 0 {
			return nil
		}
		// Retain a thin full-window stream as the fallback for sparse
		// streams whose activity misses every sample window.
		if f.ID%30 == 0 && len(fallback) < opts.MaxSampleSightings {
			for i := range f.Sightings {
				fallback = append(fallback, sampleItem{sighting: f.Sightings[i]})
			}
		}
		if !inWindow(f.TimeSec) {
			return nil
		}
		for i := range f.Sightings {
			sample = append(sample, sampleItem{sighting: f.Sightings[i]})
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if len(sample) == 0 {
		sample = fallback
	}
	// Cap by striding whole frames to preserve temporal adjacency where
	// possible; a stride on sightings would break pixel-diff estimation
	// less gracefully than simply truncating windows.
	if opts.MaxSampleSightings > 0 && len(sample) > opts.MaxSampleSightings {
		// Keep a prefix of each window proportionally: simplest faithful
		// reduction is a global prefix-per-window truncation, implemented
		// by keeping every sighting whose index within its window is below
		// the per-window budget.
		keepFrac := float64(opts.MaxSampleSightings) / float64(len(sample))
		kept := sample[:0]
		windowCount := make(map[int]int)
		windowSeen := make(map[int]int)
		for i := range sample {
			w := int(sample[i].sighting.TimeSec / stride)
			windowCount[w]++
			_ = i
		}
		budget := make(map[int]int, len(windowCount))
		for w, n := range windowCount {
			budget[w] = int(float64(n) * keepFrac)
		}
		for i := range sample {
			w := int(sample[i].sighting.TimeSec / stride)
			if windowSeen[w] < budget[w] {
				windowSeen[w]++
				kept = append(kept, sample[i])
			}
		}
		sample = kept
	}
	return sample, total, nil
}

// dominantClasses returns the head classes covering 80% of the sample's
// sightings, clamped to [1, max]. These are the classes the paper
// evaluates query latency over (§6.1).
func dominantClasses(hist map[vision.ClassID]int, max int) []vision.ClassID {
	type e struct {
		c vision.ClassID
		n int
	}
	var es []e
	total := 0
	for c, n := range hist {
		es = append(es, e{c, n})
		total += n
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].n != es[j].n {
			return es[i].n > es[j].n
		}
		return es[i].c < es[j].c
	})
	var out []vision.ClassID
	cum := 0
	for _, x := range es {
		if len(out) >= max {
			break
		}
		out = append(out, x.c)
		cum += x.n
		if float64(cum) >= 0.8*float64(total) && len(out) >= 1 {
			break
		}
	}
	return out
}

// estimateDedup measures the fraction of sample sightings pixel differencing
// would deduplicate.
func estimateDedup(sample []sampleItem, threshold float64) float64 {
	if threshold <= 0 || len(sample) == 0 {
		return 0
	}
	n := 0
	for i := range sample {
		s := &sample[i].sighting
		if s.TrackFrame > 0 && s.PixelDist <= threshold {
			n++
		}
	}
	return float64(n) / float64(len(sample))
}

// candidateModels builds the model search space: the generic compression
// ladder plus specialized variants trained on the sample's head classes.
func candidateModels(zoo *vision.Zoo, objHist map[vision.ClassID]int, opts Options) ([]*vision.Model, map[*vision.Model]int, error) {
	var models []*vision.Model
	lsOf := make(map[*vision.Model]int)
	for _, m := range zoo.Generic {
		models = append(models, m)
	}
	if !opts.DisableSpecialization {
		base := zoo.ByName("resnet18")
		if base == nil {
			return nil, nil, fmt.Errorf("tune: zoo lacks the resnet18 specialization base")
		}
		seen := make(map[string]bool)
		for _, ls := range opts.LsCandidates {
			classes := vision.SelectTopClasses(objHist, ls)
			// A degenerate specialization (one or two classes) routes most
			// queries through OTHER and estimates poorly on sparse samples;
			// fall back to generic models instead.
			if len(classes) < 3 {
				continue
			}
			for _, cfg := range vision.DefaultSpecializations {
				m, err := vision.TrainSpecialized(base, cfg, classes)
				if err != nil {
					return nil, nil, err
				}
				// Small samples can make different Ls collapse to the same
				// class list; evaluating the identical model twice wastes
				// sweep time.
				if seen[m.Name] {
					continue
				}
				seen[m.Name] = true
				models = append(models, m)
				lsOf[m] = len(classes)
			}
		}
	}
	return models, lsOf, nil
}
