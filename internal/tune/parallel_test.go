package tune

import (
	"testing"

	"focus/internal/video"
)

// TestSweepDeterministicAcrossWorkers pins the sweep's determinism
// contract: the fanned-out sweep (sample labelling, per-model evaluation,
// per-threshold clustering replays) must produce exactly the candidate list
// of the sequential reference path, in the same order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	genOpts := video.GenOptions{DurationSec: 120, SampleEvery: 1}

	seqOpts := DefaultOptions()
	seqOpts.Workers = 1
	seq := testSweep(t, "auburn_c", seqOpts, genOpts)

	parOpts := DefaultOptions()
	parOpts.Workers = 8
	par := testSweep(t, "auburn_c", parOpts, genOpts)

	if seq.SampleSightings != par.SampleSightings ||
		seq.TotalSightings != par.TotalSightings ||
		seq.DedupRate != par.DedupRate ||
		seq.EstimationGPUMS != par.EstimationGPUMS {
		t.Fatalf("sample summaries diverge: %+v vs %+v", seq, par)
	}
	if len(seq.DominantClasses) != len(par.DominantClasses) {
		t.Fatalf("dominant classes diverge: %v vs %v", seq.DominantClasses, par.DominantClasses)
	}
	for i := range seq.DominantClasses {
		if seq.DominantClasses[i] != par.DominantClasses[i] {
			t.Fatalf("dominant class %d diverges", i)
		}
	}
	if len(seq.Candidates) != len(par.Candidates) {
		t.Fatalf("%d candidates sequential vs %d parallel", len(seq.Candidates), len(par.Candidates))
	}
	for i := range seq.Candidates {
		a, b := seq.Candidates[i], par.Candidates[i]
		// Models are rebuilt per sweep; compare by name.
		if a.Model.Name != b.Model.Name || a.Ls != b.Ls || a.K != b.K || a.T != b.T ||
			a.EstRecall != b.EstRecall || a.EstPrecision != b.EstPrecision ||
			a.NormIngest != b.NormIngest || a.NormQuery != b.NormQuery {
			t.Fatalf("candidate %d diverges:\nsequential %+v\nparallel   %+v", i, a, b)
		}
	}
}
