package plan

import (
	"strings"
	"testing"
)

// FuzzParse pins the parser's structural guarantees against arbitrary
// input: it never panics, every rejection is a "plan:"-prefixed error
// with offset context, and every accepted expression's canonical form is
// a fixpoint — Parse(Canonical(e)) succeeds and re-canonicalizes to the
// same string. The fixpoint matters beyond aesthetics: cursors and cache
// keys carry canonical strings back to servers, which re-parse them; an
// accepted input whose canonical form failed to re-parse (or re-parsed
// to a different plan) would strand every continuation token minted for
// it. That is exactly the corner the exponent rule in parseNumber closes
// (%g prints extreme magnitudes as "1e-07").
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"car",
		"car & person & !bus",
		"a & b | c & d",
		"!(a | b) & c",
		"!!a",
		"car & dur(30)",
		"dur(5, 60)",
		"vel(2.5)",
		"region(0, 0, 320, 720)",
		"seq(region(0,0,9,9), region(10,0,19,9))",
		"car & within(5, seq(region(0,0,9,9), region(10,0,19,9)))",
		"dur(0.0000001)",
		"dur(1e3)",
		"dur(123456789012345678901234)",
		"seq & within",
		"(a", "a)", "a ^ b", "dur(1,2,3)", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<12 {
			return // the parser is linear; cap the smoke budget, not the grammar
		}
		e, err := Parse(s)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "plan: ") {
				t.Fatalf("Parse(%q) error lacks the package prefix: %v", s, err)
			}
			return
		}
		c1 := Canonical(e)
		e2, err := Parse(c1)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", c1, s, err)
		}
		if c2 := Canonical(e2); c2 != c1 {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", s, c1, c2)
		}
		if HasTemporal(e) != HasTemporal(e2) {
			t.Fatalf("HasTemporal changed across the canonical round-trip of %q", s)
		}
	})
}
