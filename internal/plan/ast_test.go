package plan

import (
	"fmt"
	"strings"
	"testing"

	"focus/internal/vision"
)

func mustParse(t *testing.T, s string) Expr {
	t.Helper()
	e, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return e
}

func TestParsePrecedenceAndCanonical(t *testing.T) {
	cases := []struct{ in, canon string }{
		{"car", "car"},
		{"  car  ", "car"},
		{"car & person", "(car&person)"},
		{"car & person & !bus", "(car&person&!bus)"},
		// & binds tighter than |.
		{"a & b | c & d", "((a&b)|(c&d))"},
		{"a | b | c", "(a|b|c)"},
		{"(a | b) & c", "((a|b)&c)"},
		{"!(a | b) & c", "(!(a|b)&c)"},
		{"!!a", "!!a"},
		{"traffic_light & car", "(traffic_light&car)"},
	}
	for _, tc := range cases {
		if got := Canonical(mustParse(t, tc.in)); got != tc.canon {
			t.Errorf("Canonical(Parse(%q)) = %q, want %q", tc.in, got, tc.canon)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "  ", "&", "a &", "a | ", "(a", "a)", "(a))", "a b", "a ^ b", "!(", "()",
		// Temporal syntax errors.
		"seq(a)", "seq()", "within(5)", "within(x, a)", "dur()", "dur(1,2,3)",
		"region(1,2,3)", "region(1,2,3,4,5)", "vel()", "seq(a, b", "within(5 a)"} {
		if e, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted: %v", in, Canonical(e))
		}
	}
}

// TestParseErrorContext pins the parse-error format: every message names
// the byte offset of the offending token and quotes the surrounding input,
// so the bad_expr api.Error the wire layer wraps it into is actionable
// without server logs.
func TestParseErrorContext(t *testing.T) {
	cases := []struct{ in, want string }{
		{"car & ", `plan: unexpected end of expression at offset 6 (near "car & ")`},
		{"car ^ bus", `plan: unexpected '^' at offset 4 (near "car ^ bus")`},
		{"(car & bus", `plan: missing ')' at offset 10 (near "(car & bus")`},
		{"car) & bus", `plan: unexpected ')' at offset 3 (near "car) & bus")`},
		{"seq(region(0,0,9,9))", `plan: seq needs at least 2 steps, got 1 at offset 0 (near "seq(region(0…")`},
		{"within(fast, car)", `plan: expected a number at offset 7 (near "within(fast, car)")`},
		{"dur(1,2,3)", `plan: dur needs 1 to 2 numbers, got 3 at offset 10 (near "dur(1,2,3)")`},
		{"region(0,0,9)", `plan: region needs 4 numbers, got 3 at offset 13 (near "…egion(0,0,9)")`},
		{"seq(region(0,0,9,9), region(1,1,9,9)", `plan: missing ')' closing seq at offset 36 (near "…ion(1,1,9,9)")`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.in)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q) error:\n  got  %q\n  want %q", tc.in, err.Error(), tc.want)
		}
	}
}

func TestParseTemporalCanonical(t *testing.T) {
	cases := []struct{ in, canon string }{
		{"dur(30)", "dur(30,0)"},
		{"dur(5, 60)", "dur(5,60)"},
		{"vel(2.5)", "vel(2.5,0)"},
		{"region(0, 0, 320, 720)", "region(0,0,320,720)"},
		{"seq(region(0,0,9,9), region(10,0,19,9))", "seq(region(0,0,9,9),region(10,0,19,9))"},
		{"within(5, region(0,0,9,9))", "within(5,region(0,0,9,9))"},
		{"car & dur(30)", "(car&dur(30,0))"},
		{"car & within(5, seq(region(0,0,9,9), region(10,0,19,9)))",
			"(car&within(5,seq(region(0,0,9,9),region(10,0,19,9))))"},
		{"!bus & dur(30) | car", "((!bus&dur(30,0))|car)"},
		// The call names are keywords only before "(": bare idents stay
		// classes.
		{"seq & within", "(seq&within)"},
	}
	for _, tc := range cases {
		got := Canonical(mustParse(t, tc.in))
		if got != tc.canon {
			t.Errorf("Canonical(Parse(%q)) = %q, want %q", tc.in, got, tc.canon)
			continue
		}
		// Canonical forms round-trip through Parse.
		if again := Canonical(mustParse(t, got)); again != got {
			t.Errorf("canonical %q re-parses to %q", got, again)
		}
	}
}

func TestHasTemporal(t *testing.T) {
	temporal := []string{"dur(30)", "car & dur(30)", "!(car | vel(5))",
		"seq(region(0,0,9,9), region(10,0,19,9))", "within(5, region(0,0,9,9))"}
	boolean := []string{"car", "car & !bus", "(a|b)&c", "seq & within"}
	for _, s := range temporal {
		if !HasTemporal(mustParse(t, s)) {
			t.Errorf("HasTemporal(%q) = false, want true", s)
		}
	}
	for _, s := range boolean {
		if HasTemporal(mustParse(t, s)) {
			t.Errorf("HasTemporal(%q) = true, want false", s)
		}
	}
}

func TestCompileRejectsTemporal(t *testing.T) {
	_, err := Compile(mustParse(t, "car & dur(30)"), fakeResolve())
	if err == nil {
		t.Fatal("Compile accepted a temporal operator")
	}
	if !strings.Contains(err.Error(), "track execution path") {
		t.Errorf("error should point at the track path: %v", err)
	}
}

func TestCanonicalLeafOptions(t *testing.T) {
	e := &And{Children: []Expr{
		&Leaf{Class: "car", Opts: LeafOptions{Kx: 2, StartSec: 0, EndSec: 120, MaxClusters: 50}},
		&Leaf{Class: "person"},
	}}
	want := "(car[kx=2,s=0,e=120,m=50]&person)"
	if got := Canonical(e); got != want {
		t.Errorf("Canonical = %q, want %q", got, want)
	}
}

func TestAnchored(t *testing.T) {
	anchored := []string{"car", "car & !bus", "!(!car)", "car | bus", "truck & !(car | bus)",
		"!(car & bus) & truck", "!(!car | !bus)",
		// ¬(car ∨ ¬bus) = ¬car ∧ bus: anchored by the bus conjunct.
		"!(car | !bus)"}
	unanchored := []string{"!bus", "car | !bus", "!(car & bus)", "!car & !bus"}
	for _, s := range anchored {
		if !mustParse(t, s).anchored() {
			t.Errorf("%q should be anchored", s)
		}
	}
	for _, s := range unanchored {
		if mustParse(t, s).anchored() {
			t.Errorf("%q should not be anchored", s)
		}
	}
}

// fakeResolve maps class names to sequential IDs, failing on "nope".
func fakeResolve() Resolver {
	next := vision.ClassID(0)
	ids := make(map[string]vision.ClassID)
	return func(name string) (vision.ClassID, error) {
		if name == "nope" {
			return 0, fmt.Errorf("unknown class %q", name)
		}
		if id, ok := ids[name]; ok {
			return id, nil
		}
		ids[name] = next
		next++
		return ids[name], nil
	}
}

func TestCompileDedupAndPolarity(t *testing.T) {
	// car appears positively and (inside the negation) negatively: one
	// deduplicated leaf, still scoring because of the positive occurrence.
	p, err := Compile(mustParse(t, "car & !(bus & car)"), fakeResolve())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.leaves) != 2 {
		t.Fatalf("%d leaves, want 2 (car deduplicated)", len(p.leaves))
	}
	byName := make(map[string]*leafSpec)
	for _, l := range p.leaves {
		byName[l.name] = l
	}
	if !byName["car"].scoring {
		t.Error("car has a positive occurrence and must be scoring")
	}
	if byName["bus"].scoring {
		t.Error("bus only occurs negatively and must not be scoring")
	}
	// Distinct options are distinct leaves.
	e := &And{Children: []Expr{
		&Leaf{Class: "car"},
		&Leaf{Class: "car", Opts: LeafOptions{Kx: 2}},
	}}
	p2, err := Compile(e, fakeResolve())
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.leaves) != 2 {
		t.Fatalf("%d leaves, want 2 (distinct options)", len(p2.leaves))
	}
	if got := leafKeys(e); len(got) != 2 {
		t.Fatalf("leafKeys = %v, want 2 entries", got)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, fakeResolve()); err == nil {
		t.Error("nil expression accepted")
	}
	if _, err := Compile(mustParse(t, "!bus"), fakeResolve()); err == nil {
		t.Error("unanchored plan accepted")
	}
	if _, err := Compile(mustParse(t, "car & nope"), fakeResolve()); err == nil {
		t.Error("unknown class accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error does not name the class: %v", err)
	}
	// Empty connectives are construction bugs: an empty Or is constant
	// False, an empty And constant True — both must fail loudly.
	if _, err := Compile(&And{Children: []Expr{&Leaf{Class: "car"}, &Or{}}}, fakeResolve()); err == nil {
		t.Error("empty Or accepted")
	}
	if _, err := Compile(&And{}, fakeResolve()); err == nil {
		t.Error("empty And accepted")
	}
}

func TestEvalThreeValued(t *testing.T) {
	p, err := Compile(mustParse(t, "(car | person) & !bus"), fakeResolve())
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[string]int)
	for _, l := range p.leaves {
		idx[l.name] = l.idx
	}
	st := func(car, person, bus int8) []int8 {
		out := make([]int8, len(p.leaves))
		out[idx["car"]], out[idx["person"]], out[idx["bus"]] = car, person, bus
		return out
	}
	cases := []struct {
		car, person, bus int8
		want             int8
	}{
		{tvTrue, tvFalse, tvFalse, tvTrue},
		{tvFalse, tvTrue, tvFalse, tvTrue},
		{tvFalse, tvFalse, tvUnknown, tvFalse},  // Or is False: whole thing False
		{tvTrue, tvFalse, tvUnknown, tvUnknown}, // bus pending: undecided
		{tvTrue, tvFalse, tvTrue, tvFalse},      // bus present: excluded
		{tvUnknown, tvFalse, tvFalse, tvUnknown},
		{tvUnknown, tvTrue, tvFalse, tvTrue}, // person already satisfies the Or
	}
	for _, tc := range cases {
		if got := evalTV(p.eval, st(tc.car, tc.person, tc.bus)); got != tc.want {
			t.Errorf("eval(car=%d person=%d bus=%d) = %d, want %d",
				tc.car, tc.person, tc.bus, got, tc.want)
		}
	}
}
