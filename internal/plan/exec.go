package plan

import (
	"fmt"
	"sort"

	"focus/internal/index"
	"focus/internal/parallel"
	"focus/internal/query"
	"focus/internal/video"
	"focus/internal/vision"
)

// Three-valued truth for partially verified predicates: a leaf is True for
// a frame once a verified matching cluster covers it, False once no
// unresolved candidate could, Unknown in between. And = min, Or = max,
// Not = negation; values only ever move away from Unknown, so a frame's
// overall verdict is final as soon as it leaves tvUnknown.
const (
	tvFalse   int8 = -1
	tvUnknown int8 = 0
	tvTrue    int8 = 1
)

// Resolver maps a class name to its ClassID, typically focus.System.ClassID.
type Resolver func(name string) (vision.ClassID, error)

// Plan is a compiled predicate: the AST plus its deduplicated leaves (one
// per distinct class+options pair, however many times the predicate
// mentions it) and the evaluation tree over them.
type Plan struct {
	root      Expr
	eval      *node
	leaves    []*leafSpec
	canonical string
}

type leafSpec struct {
	idx     int
	name    string
	class   vision.ClassID
	opts    LeafOptions
	scoring bool // has at least one positive-polarity occurrence
}

const (
	opLeaf = iota
	opAnd
	opOr
	opNot
)

type node struct {
	op   int
	leaf int
	kids []*node
}

func evalTV(n *node, st []int8) int8 {
	switch n.op {
	case opLeaf:
		return st[n.leaf]
	case opAnd:
		v := tvTrue
		for _, k := range n.kids {
			if kv := evalTV(k, st); kv < v {
				v = kv
			}
		}
		return v
	case opOr:
		v := tvFalse
		for _, k := range n.kids {
			if kv := evalTV(k, st); kv > v {
				v = kv
			}
		}
		return v
	default: // opNot
		return -evalTV(n.kids[0], st)
	}
}

// Compile validates an expression and resolves its classes. It rejects
// unanchored plans — predicates like "!bus" or "car | !bus" whose matches
// are not bounded by any positive leaf's index retrieval — because Focus
// can only answer queries its index supports (§4.1).
func Compile(e Expr, resolve Resolver) (*Plan, error) {
	if e == nil {
		return nil, fmt.Errorf("plan: empty expression")
	}
	if HasTemporal(e) {
		return nil, fmt.Errorf("plan: temporal operator in %q requires the track execution path (query with the tracks form)", Canonical(e))
	}
	if !e.anchored() {
		return nil, fmt.Errorf("plan: unanchored predicate %q: every Or branch needs at least one positive class (a bare negation would match the unbounded complement of the index)", Canonical(e))
	}
	p := &Plan{root: e, canonical: Canonical(e)}
	byKey := make(map[string]*leafSpec)
	var compileErr error
	var build func(e Expr, positive bool) *node
	build = func(e Expr, positive bool) *node {
		switch x := e.(type) {
		case *Leaf:
			key := Canonical(x)
			spec, ok := byKey[key]
			if !ok {
				class, err := resolve(x.Class)
				if err != nil && compileErr == nil {
					compileErr = fmt.Errorf("plan: leaf %q: %w", x.Class, err)
				}
				spec = &leafSpec{idx: len(p.leaves), name: x.Class, class: class, opts: x.Opts}
				byKey[key] = spec
				p.leaves = append(p.leaves, spec)
			}
			if positive {
				spec.scoring = true
			}
			return &node{op: opLeaf, leaf: spec.idx}
		case *And:
			n := &node{op: opAnd}
			for _, c := range x.Children {
				n.kids = append(n.kids, build(c, positive))
			}
			if len(n.kids) == 0 && compileErr == nil {
				compileErr = fmt.Errorf("plan: empty And")
			}
			return n
		case *Or:
			n := &node{op: opOr}
			for _, c := range x.Children {
				n.kids = append(n.kids, build(c, positive))
			}
			if len(n.kids) == 0 && compileErr == nil {
				// An empty Or would be constant False (and constant True
				// under Not) — always a construction bug, never intent.
				compileErr = fmt.Errorf("plan: empty Or")
			}
			return n
		case *Not:
			return &node{op: opNot, kids: []*node{build(x.Child, !positive)}}
		default:
			if compileErr == nil {
				compileErr = fmt.Errorf("plan: unknown expression node %T", e)
			}
			return &node{op: opLeaf}
		}
	}
	p.eval = build(e, true)
	if compileErr != nil {
		return nil, compileErr
	}
	return p, nil
}

// Canonical returns the plan's canonical text form, the serve layer's
// cache-key component.
func (p *Plan) Canonical() string { return p.canonical }

// SingleClass reports whether the plan is a bare positive one-leaf
// predicate with default leaf options, returning the class name when so.
// The wire layer uses it to answer such plans in the per-stream "frames"
// form — the paper's single-class query — through the single-class engine
// instead of the ranking pipeline.
func (p *Plan) SingleClass() (string, bool) {
	leaf, ok := p.root.(*Leaf)
	if !ok || leaf.Opts != (LeafOptions{}) {
		return "", false
	}
	return leaf.Class, true
}

// IsSingleLeafExpr reports whether a parsed (not necessarily compiled)
// expression is a bare positive leaf with default options — the syntactic
// form of SingleClass. The router uses it to predict a request's response
// form without owning a class space to compile against.
func IsSingleLeafExpr(e Expr) bool {
	leaf, ok := e.(*Leaf)
	return ok && leaf.Opts == (LeafOptions{})
}

// Classes returns the distinct leaf class names, in first-mention order.
func (p *Plan) Classes() []string {
	out := make([]string, len(p.leaves))
	for i, l := range p.leaves {
		out[i] = l.name
	}
	return out
}

// Target is one stream a plan executes against.
type Target struct {
	// Stream is the stream name items are tagged with.
	Stream string
	// Engine is the stream's query engine.
	Engine *query.Engine
	// Watermark pins every leaf to this ingest watermark (MaxSealSec
	// semantics: 0 = everything indexed, negative = the empty horizon).
	Watermark float64
	// NumGPUs is the GT-CNN verification parallelism for this stream.
	NumGPUs int
}

// Options tune one plan execution.
type Options struct {
	// TopK caps the ranked result; 0 returns every matching frame.
	TopK int
	// DefaultLeaf applies to leaves whose Opts are the zero value.
	DefaultLeaf LeafOptions
	// StepClusters is how many clusters each leaf resolves per refinement
	// round — the increment by which a Cursor extends the per-leaf
	// examined-cluster budget. Default 8.
	StepClusters int
	// Workers bounds the cross-stream fan-out; 0 runs one worker per
	// stream, 1 is the sequential reference. Both are bit-identical.
	Workers int
}

// Item is one ranked result: a frame on a stream with its aggregate
// confidence score — the sum, over the plan's positive leaves the frame
// satisfies, of the indexed class-confidence mass of the best verified
// cluster covering it.
type Item struct {
	Stream  string
	Frame   video.FrameID
	TimeSec float64
	Segment video.SegmentID
	Score   float64
}

// RankBefore is the total result order: score descending, then stream
// name, then frame — the comparator both the cursor and the one-shot path
// emit in. It is exported because it is a cross-layer contract: the
// router's scatter-gather merge must interleave per-shard rankings with
// exactly this order for a routed /plan answer to be bit-identical to a
// single-node execution (streams are disjoint across shards, so merging
// per-shard RankBefore-ordered lists reproduces the global order).
func RankBefore(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	return a.Frame < b.Frame
}

// LeafStat reports one leaf's work on one stream.
type LeafStat struct {
	Class      string
	ViaOther   bool
	Candidates int // clusters retrieved (the selectivity estimate)
	Verified   int // clusters this leaf sent to GT verification
	Skipped    int // clusters short-circuited (no surviving frame needed them)
	Matched    int // verified clusters whose verdict equals the leaf class
}

// StreamStats reports one stream's share of an execution.
type StreamStats struct {
	Watermark        float64
	Leaves           []LeafStat
	VerifiedClusters int // distinct clusters resolved by verification
	SkippedClusters  int
	GTInferences     int // GT-CNN invocations actually paid (verdict-cache misses)
	GPUTimeMS        float64
	LatencyMS        float64
}

// Stats aggregates an execution across streams.
type Stats struct {
	Canonical    string
	PerStream    map[string]*StreamStats
	GTInferences int
	GPUTimeMS    float64
	LatencyMS    float64 // slowest stream bounds the plan (§5)
	Done         bool
	// EarlyExit marks a result produced by the budget-allocating early-exit
	// executor (ExecuteEarlyExit) rather than the exact ranking path.
	EarlyExit bool
}

// Result is a completed one-shot execution.
type Result struct {
	Items []Item
	Stats Stats
}

// Execute runs the plan to completion (or to TopK) and returns the ranked
// result. It is exactly NewCursor + one drain: paged and one-shot
// execution share every code path.
func Execute(p *Plan, targets []Target, opts Options) (*Result, error) {
	cur, err := NewCursor(p, targets, opts)
	if err != nil {
		return nil, err
	}
	items, err := cur.Next(0)
	if err != nil {
		return nil, err
	}
	return &Result{Items: items, Stats: cur.Stats()}, nil
}

// Cursor is a paged plan execution: Next(n) returns the next n items of
// the final ranking, refining the underlying per-leaf cluster budgets only
// as far as needed. An item is emitted only when no unresolved cluster
// anywhere could produce a higher-ranked frame, so the concatenation of
// pages is bit-identical to the one-shot ranking regardless of page sizes.
type Cursor struct {
	plan    *Plan
	opts    Options
	streams []*streamExec
	emitted int
	done    bool
}

// NewCursor prepares an execution over the targets: it retrieves every
// leaf's candidate clusters (index-only, no GPU time) and orders leaf
// verification by estimated selectivity. Verification starts lazily on the
// first Next.
func NewCursor(p *Plan, targets []Target, opts Options) (*Cursor, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("plan: no target streams")
	}
	if opts.StepClusters <= 0 {
		opts.StepClusters = 8
	}
	c := &Cursor{plan: p, opts: opts}
	for _, t := range targets {
		if t.Engine == nil {
			return nil, fmt.Errorf("plan: stream %q has no query engine", t.Stream)
		}
		s, err := newStreamExec(p, t, opts)
		if err != nil {
			return nil, err
		}
		c.streams = append(c.streams, s)
	}
	return c, nil
}

// Next returns up to n further items of the final ranking; n <= 0 drains
// the cursor. A short (or empty) return means the plan is exhausted — or
// that TopK was reached.
func (c *Cursor) Next(n int) ([]Item, error) {
	var out []Item
	for !c.done && (n <= 0 || len(out) < n) {
		// The globally best ready item is final once it outranks every
		// stream's upper bound on any still-unresolved frame's score.
		best := -1
		var bestItem Item
		maxBound := -1.0
		for si, s := range c.streams {
			if item, ok := s.peek(); ok && (best < 0 || RankBefore(item, bestItem)) {
				best, bestItem = si, item
			}
			if s.bound > maxBound {
				maxBound = s.bound
			}
		}
		if best >= 0 && bestItem.Score > maxBound {
			c.streams[best].pop()
			out = append(out, bestItem)
			c.emitted++
			if c.opts.TopK > 0 && c.emitted >= c.opts.TopK {
				c.done = true
			}
			continue
		}
		allResolved := true
		for _, s := range c.streams {
			if !s.resolvedAll {
				allResolved = false
				break
			}
		}
		if allResolved {
			// Bounds are all gone, so any remaining ready item would have
			// been emitted above: the plan is exhausted.
			c.done = true
			break
		}
		// Refine: every unresolved stream advances one round in parallel
		// (§5 fan-out; rounds are independent per stream, and emission
		// order is provably round-schedule independent).
		workers := parallel.StreamWorkers(len(c.streams), c.opts.Workers)
		err := parallel.ForEach(workers, len(c.streams), func(i int) error {
			c.streams[i].advance(c.opts.StepClusters)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Done reports whether the cursor is exhausted (or reached TopK).
func (c *Cursor) Done() bool { return c.done }

// Stats snapshots the execution's cost counters so far.
func (c *Cursor) Stats() Stats {
	return collectStats(c.plan.canonical, c.streams, c.done)
}

// collectStats aggregates per-stream counters; it is the single accounting
// path shared by the exact cursor and the early-exit executor.
func collectStats(canonical string, streams []*streamExec, done bool) Stats {
	st := Stats{
		Canonical: canonical,
		PerStream: make(map[string]*StreamStats, len(streams)),
		Done:      done,
	}
	for _, s := range streams {
		ss := &StreamStats{
			Watermark:        s.watermark,
			VerifiedClusters: len(s.uniqueVerified),
			GTInferences:     s.verifier.Inferences,
			GPUTimeMS:        s.verifier.GPUTimeMS,
			LatencyMS:        s.verifier.LatencyMS(),
		}
		for _, le := range s.leaves {
			ss.Leaves = append(ss.Leaves, LeafStat{
				Class:      le.spec.name,
				ViaOther:   le.viaOther,
				Candidates: len(le.cands),
				Verified:   le.verified,
				Skipped:    le.skipped,
				Matched:    le.matched,
			})
			ss.SkippedClusters += le.skipped
		}
		st.PerStream[s.name] = ss
		st.GTInferences += ss.GTInferences
		st.GPUTimeMS += ss.GPUTimeMS
		if ss.LatencyMS > st.LatencyMS {
			st.LatencyMS = ss.LatencyMS
		}
	}
	return st
}

// ---- per-stream execution ----

const (
	candUnresolved int8 = iota
	candMatched
	candNotMatched
	candSkipped
)

type streamExec struct {
	name      string
	watermark float64
	eval      *node
	verifier  *query.BatchVerifier
	leaves    []*leafExec
	order     []int // leaf indices, most selective (fewest candidates) first

	frames         map[video.FrameID]*frameState
	uniqueVerified map[index.ClusterID]struct{}

	ready       []Item // ready, unemitted frames in final rank order
	readyPos    int
	bound       float64 // max possible score of any unready, undead frame; -1 if none
	resolvedAll bool
}

// frameRef is one distinct member frame of a candidate cluster, with its
// timestamp.
type frameRef struct {
	frame   video.FrameID
	timeSec float64
}

type leafExec struct {
	spec       *leafSpec
	viaOther   bool
	cands      []*index.ClusterRecord
	confs      []float64    // per-candidate class confidence, descending
	candFrames [][]frameRef // per-candidate member frames within the leaf window, deduplicated
	state      []int8       // candUnresolved / candMatched / candNotMatched / candSkipped
	next       int          // first possibly-unresolved candidate
	verified   int
	skipped    int
	matched    int
}

type frameState struct {
	timeSec  float64
	status   []int8    // per-leaf three-valued truth
	bestConf []float64 // per-leaf confidence of the best matching cluster
	pending  []int32   // per-leaf unresolved candidates covering this frame
	memberOf [][]int32 // per-leaf candidate indices covering this frame, confidence-descending
	nextUB   []int32   // per-leaf cursor into memberOf for the unresolved-confidence bound
	emitted  bool
	dead     bool // overall verdict is False: terminal
}

func newStreamExec(p *Plan, t Target, opts Options) (*streamExec, error) {
	verifier, err := t.Engine.NewBatchVerifier(t.NumGPUs)
	if err != nil {
		return nil, err
	}
	s := &streamExec{
		name:           t.Stream,
		watermark:      t.Watermark,
		eval:           p.eval,
		verifier:       verifier,
		frames:         make(map[video.FrameID]*frameState),
		uniqueVerified: make(map[index.ClusterID]struct{}),
		bound:          -1,
	}
	nLeaves := len(p.leaves)
	for _, spec := range p.leaves {
		lopts := spec.opts
		if lopts == (LeafOptions{}) {
			lopts = opts.DefaultLeaf
		}
		qopts := query.Options{
			Kx:          lopts.Kx,
			StartSec:    lopts.StartSec,
			EndSec:      lopts.EndSec,
			MaxClusters: lopts.MaxClusters,
			MaxSealSec:  t.Watermark,
		}
		cands, viaOther, err := t.Engine.Candidates(spec.class, qopts)
		if err != nil {
			return nil, fmt.Errorf("plan: stream %q leaf %q: %w", t.Stream, spec.name, err)
		}
		le := &leafExec{spec: spec, viaOther: viaOther}
		lookup := spec.class
		if viaOther {
			lookup = vision.ClassOther
		}
		// Verification order within the leaf: by indexed class confidence,
		// descending (ties by cluster ID) — so the first verified match
		// covering a frame is also its best-scoring one, and the highest
		// unresolved confidence bounds what refinement can still add.
		type scored struct {
			rec  *index.ClusterRecord
			conf float64
		}
		sc := make([]scored, len(cands))
		for i, rec := range cands {
			sc[i] = scored{rec: rec, conf: classConfidence(rec, lookup)}
		}
		sort.Slice(sc, func(i, j int) bool {
			if sc[i].conf != sc[j].conf {
				return sc[i].conf > sc[j].conf
			}
			return sc[i].rec.ID < sc[j].rec.ID
		})
		le.cands = make([]*index.ClusterRecord, len(sc))
		le.confs = make([]float64, len(sc))
		le.candFrames = make([][]frameRef, len(sc))
		le.state = make([]int8, len(sc))
		for i, e := range sc {
			le.cands[i] = e.rec
			le.confs[i] = e.conf
			le.candFrames[i] = memberFrames(e.rec, lopts)
		}
		s.leaves = append(s.leaves, le)
	}
	// Register every frame any leaf could touch, with per-leaf coverage.
	// Frames not covered by a leaf at all are permanently False for it.
	for li, le := range s.leaves {
		for ci, frames := range le.candFrames {
			for _, fr := range frames {
				fs := s.frames[fr.frame]
				if fs == nil {
					fs = &frameState{
						timeSec:  fr.timeSec,
						status:   make([]int8, nLeaves),
						bestConf: make([]float64, nLeaves),
						pending:  make([]int32, nLeaves),
						memberOf: make([][]int32, nLeaves),
						nextUB:   make([]int32, nLeaves),
					}
					s.frames[fr.frame] = fs
				}
				fs.memberOf[li] = append(fs.memberOf[li], int32(ci))
				fs.pending[li]++
			}
		}
	}
	for _, fs := range s.frames {
		for li := range s.leaves {
			if fs.pending[li] == 0 {
				fs.status[li] = tvFalse
			}
		}
	}
	// Short-circuit order: most selective leaf first (fewest candidates),
	// ties by leaf index, so cheap exclusions land before expensive leaves
	// spend GT time on already-dead frames.
	s.order = make([]int, len(s.leaves))
	for i := range s.order {
		s.order[i] = i
	}
	sort.Slice(s.order, func(i, j int) bool {
		a, b := s.order[i], s.order[j]
		if len(s.leaves[a].cands) != len(s.leaves[b].cands) {
			return len(s.leaves[a].cands) < len(s.leaves[b].cands)
		}
		return a < b
	})
	s.recompute()
	return s, nil
}

// classConfidence extracts the cluster's indexed confidence mass for the
// lookup class (§3: clusters are indexed under their top-K classes with
// aggregated member confidence).
func classConfidence(rec *index.ClusterRecord, lookup vision.ClassID) float64 {
	for _, p := range rec.TopK {
		if p.Class == lookup {
			return float64(p.Confidence)
		}
	}
	return 0
}

// memberFrames returns the cluster's distinct member frames within the
// leaf's window, in first-appearance order, with their timestamps.
func memberFrames(rec *index.ClusterRecord, opts LeafOptions) []frameRef {
	var out []frameRef
	seen := make(map[video.FrameID]struct{}, len(rec.Members))
	for _, m := range rec.Members {
		if m.TimeSec < opts.StartSec {
			continue
		}
		if opts.EndSec > 0 && m.TimeSec > opts.EndSec {
			continue
		}
		if _, dup := seen[m.Frame]; dup {
			continue
		}
		seen[m.Frame] = struct{}{}
		out = append(out, frameRef{frame: m.Frame, timeSec: m.TimeSec})
	}
	return out
}

// advance resolves up to step candidates per leaf: clusters whose member
// frames are all already-True (for this leaf) or dead are skipped without
// GT cost; the rest are verified as one batch. Leaves run most selective
// first, and dead-frame knowledge propagates between leaves within the
// round, so a frame excluded by the cheap leaf spares the expensive
// leaves' clusters entirely.
func (s *streamExec) advance(step int) {
	if s.resolvedAll {
		return
	}
	for _, li := range s.order {
		le := s.leaves[li]
		resolved := 0
		var batch []*index.ClusterRecord
		var batchIdx []int
		for i := le.next; i < len(le.cands) && resolved < step; i++ {
			if le.state[i] != candUnresolved {
				continue
			}
			if s.skippable(li, i) {
				le.state[i] = candSkipped
				le.skipped++
				s.applyResolution(li, i, false)
				resolved++
				continue
			}
			batch = append(batch, le.cands[i])
			batchIdx = append(batchIdx, i)
			resolved++
		}
		verdicts := s.verifier.Verify(batch)
		for j, i := range batchIdx {
			s.uniqueVerified[le.cands[i].ID] = struct{}{}
			matched := verdicts[j] == le.spec.class
			if matched {
				le.state[i] = candMatched
				le.matched++
			} else {
				le.state[i] = candNotMatched
			}
			le.verified++
			s.applyResolution(li, i, matched)
		}
		for le.next < len(le.cands) && le.state[le.next] != candUnresolved {
			le.next++
		}
		// Propagate fresh False verdicts into dead flags before the next
		// leaf decides what it may skip.
		s.refreshDead()
	}
	s.resolvedAll = true
	for _, le := range s.leaves {
		if le.next < len(le.cands) {
			s.resolvedAll = false
			break
		}
	}
	s.recompute()
}

// skippable reports that verifying candidate i of leaf li cannot change
// the result: every frame it covers is either already True for the leaf
// (with at least this confidence, since candidates resolve in descending
// confidence order) or can never satisfy the plan.
func (s *streamExec) skippable(li, i int) bool {
	for _, fr := range s.leaves[li].candFrames[i] {
		fs := s.frames[fr.frame]
		if fs.dead || fs.status[li] == tvTrue {
			continue
		}
		return false
	}
	return true
}

// applyResolution updates per-frame leaf truth after candidate i of leaf
// li resolved (matched, not matched, or skipped).
func (s *streamExec) applyResolution(li, i int, matched bool) {
	le := s.leaves[li]
	for _, fr := range le.candFrames[i] {
		fs := s.frames[fr.frame]
		fs.pending[li]--
		if matched && fs.status[li] != tvTrue {
			fs.status[li] = tvTrue
			fs.bestConf[li] = le.confs[i]
		} else if fs.status[li] == tvUnknown && fs.pending[li] == 0 {
			fs.status[li] = tvFalse
		}
	}
}

// refreshDead updates only the terminal-False flags (cheap enough to run
// between leaves within a round).
func (s *streamExec) refreshDead() {
	for _, fs := range s.frames {
		if !fs.dead && !fs.emitted && evalTV(s.eval, fs.status) == tvFalse {
			fs.dead = true
		}
	}
}

// recompute rebuilds the stream's ready list and score bound from the
// per-frame truth state. A frame is ready once the plan is True for it and
// no scoring leaf covering it is still Unknown (its score can no longer
// grow); the bound is the best score any not-yet-ready frame could still
// reach, using each leaf's highest unresolved candidate confidence.
func (s *streamExec) recompute() {
	s.ready = s.ready[:0]
	s.readyPos = 0
	s.bound = -1
	for f, fs := range s.frames {
		if fs.emitted || fs.dead {
			continue
		}
		tv := evalTV(s.eval, fs.status)
		if tv == tvFalse {
			fs.dead = true
			continue
		}
		score, settled := 0.0, true
		ub := 0.0
		for li, le := range s.leaves {
			if !le.spec.scoring {
				continue
			}
			switch fs.status[li] {
			case tvTrue:
				score += fs.bestConf[li]
				ub += fs.bestConf[li]
			case tvUnknown:
				settled = false
				ub += s.unresolvedConf(fs, li)
			}
		}
		if tv == tvTrue && settled {
			s.ready = append(s.ready, Item{
				Stream:  s.name,
				Frame:   f,
				TimeSec: fs.timeSec,
				Segment: video.SegmentOf(fs.timeSec),
				Score:   score,
			})
			continue
		}
		if ub > s.bound {
			s.bound = ub
		}
	}
	sort.Slice(s.ready, func(i, j int) bool { return RankBefore(s.ready[i], s.ready[j]) })
}

// unresolvedConf returns the highest confidence among leaf li's unresolved
// candidates covering this frame — the most its score could still gain
// from that leaf.
func (s *streamExec) unresolvedConf(fs *frameState, li int) float64 {
	le := s.leaves[li]
	list := fs.memberOf[li]
	for int(fs.nextUB[li]) < len(list) && le.state[list[fs.nextUB[li]]] != candUnresolved {
		fs.nextUB[li]++
	}
	if int(fs.nextUB[li]) < len(list) {
		return le.confs[list[fs.nextUB[li]]]
	}
	return 0
}

func (s *streamExec) peek() (Item, bool) {
	if s.readyPos < len(s.ready) {
		return s.ready[s.readyPos], true
	}
	return Item{}, false
}

func (s *streamExec) pop() {
	item := s.ready[s.readyPos]
	s.frames[item.Frame].emitted = true
	s.readyPos++
}
