package plan

import (
	"fmt"
	"sort"
	"strconv"

	"focus/internal/query"
	"focus/internal/simrand"
)

// Early-exit execution: the opt-in approximate mode behind
// api.QueryRequest.Mode == "early_exit".
//
// The exact cursor must prove global rank finality before emitting
// anything, which forces it to refine every stream each round — on a
// corpus where the predicate is abundant in one stream and rare in the
// rest, most of that GT-CNN budget buys nothing. Early-exit mode drops the
// ranking guarantee and keeps only the verification guarantee: it treats
// each stream's candidate chunks as ExSample bandit arms (internal/query's
// allocator) and spends verification where results have actually been
// surfacing, stopping as soon as TopK settled results are in hand.
//
// The contract, exactly:
//
//   - Every returned item is GT-verified: an item leaves a streamExec's
//     ready list only when the plan evaluates True for its frame from real
//     verdicts and every scoring leaf covering it is settled — the same
//     readiness predicate the exact path uses. Returned scores are
//     therefore bit-identical to the score the exact path would assign the
//     same frame; early exit changes WHICH frames are found, never what a
//     found frame looks like.
//   - Deterministic per (plan, options, watermark vector): the Thompson
//     sampler draws from a simrand source derived from the canonical plan
//     text and the stream/watermark vector, so the pull sequence — and the
//     answer — is a pure function of the request, cacheable like any exact
//     query.
//   - Sub-linear discovery cost is the point, not a side effect: pulls
//     concentrate where the posterior discovery rate is highest, so the
//     GT-CNN spend scales with how hard results are to find, not with
//     corpus size (measured by gpu.Meter deltas in the invariant tests).
//
// TopK must be >= 1: "give me everything, approximately" has no early
// exit — resolving everything IS the exact mode.

// ExecuteEarlyExit runs the plan in early-exit mode and returns up to
// TopK verified items in RankBefore order over the discovered set.
func ExecuteEarlyExit(p *Plan, targets []Target, opts Options) (*Result, error) {
	if opts.TopK <= 0 {
		return nil, fmt.Errorf("plan: early-exit execution requires TopK >= 1 (unbounded result sets cannot exit early)")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("plan: no target streams")
	}
	if opts.StepClusters <= 0 {
		opts.StepClusters = 8
	}
	streams := make([]*streamExec, len(targets))
	for i, t := range targets {
		if t.Engine == nil {
			return nil, fmt.Errorf("plan: stream %q has no query engine", t.Stream)
		}
		s, err := newStreamExec(p, t, opts)
		if err != nil {
			return nil, err
		}
		streams[i] = s
	}
	alloc := query.NewExSample(earlyExitSource(p, targets), len(streams))
	var items []Item
	// Degenerate streams (no candidates at all) are resolved at
	// construction; retire their arms before the first pull.
	for i, s := range streams {
		items = drainReady(s, items)
		if s.resolvedAll {
			alloc.Exhaust(i)
		}
	}
	for len(items) < opts.TopK && !alloc.Exhausted() {
		arm, ok := alloc.Pick()
		if !ok {
			break
		}
		s := streams[arm]
		before := len(items)
		s.advance(opts.StepClusters)
		items = drainReady(s, items)
		alloc.Record(arm, len(items) > before)
		if s.resolvedAll {
			alloc.Exhaust(arm)
		}
	}
	// A drain can overshoot TopK; rank the discovered set and cut. The
	// order is RankBefore so routed merges and golden comparisons reuse
	// the exact path's comparator.
	sort.Slice(items, func(i, j int) bool { return RankBefore(items[i], items[j]) })
	if len(items) > opts.TopK {
		items = items[:opts.TopK]
	}
	st := collectStats(p.canonical, streams, true)
	st.EarlyExit = true
	return &Result{Items: items, Stats: st}, nil
}

// drainReady pops every currently-ready item off the stream. Readiness is
// terminal (verdicts never retract), so popping eagerly loses nothing.
func drainReady(s *streamExec, items []Item) []Item {
	for {
		item, ok := s.peek()
		if !ok {
			return items
		}
		s.pop()
		items = append(items, item)
	}
}

// earlyExitSource derives the execution's random source from the canonical
// plan text and the stream/watermark vector — everything that identifies
// the request at a fixed index state. TopK is deliberately excluded: a
// TopK=5 run pulls a prefix of the TopK=10 run's schedule.
func earlyExitSource(p *Plan, targets []Target) *simrand.Source {
	labels := make([]string, 0, 1+2*len(targets))
	labels = append(labels, p.canonical)
	for _, t := range targets {
		labels = append(labels, t.Stream, strconv.FormatFloat(t.Watermark, 'g', -1, 64))
	}
	return simrand.New(0x6578736d706c).Derive(labels...) // "exsmpl"
}
