// Package plan is Focus's compound query planner: it answers boolean
// multi-class predicates — "frames with a car AND a person but NO bus" —
// by compiling a predicate AST (And/Or/Not over per-class leaf queries)
// into a DAG of retrieval and verification calls against the existing
// per-stream query engines, then ranking the matching frames by aggregate
// class confidence.
//
// The planner composes the paper's single-class primitives (§5: top-K
// retrieval, Kx cuts, MaxClusters budgets, GT-CNN verification) without
// changing their cost model:
//
//   - Retrieval per leaf is index-only and therefore cheap; its candidate
//     count is the leaf's selectivity estimate.
//   - GT-CNN verification — the expensive step — is shared across leaves:
//     verdicts are memoized per object cluster in the engine's verdict
//     cache, so a cluster mentioned by three predicates is verified once
//     (§6.7), and verification is ordered most-selective-leaf-first so
//     frames ruled out early let later leaves skip whole clusters
//     (short-circuit evaluation).
//   - Execution pinned to a watermark vector is a pure function of
//     (plan, options, vector): the serve layer caches plan results under
//     the plan's canonical form exactly like single-class queries.
//
// Results stream through a Cursor whose Next(n) extends the per-leaf
// examined-cluster budget incrementally and emits a frame only once its
// rank is provably final, so the page sequence concatenates to exactly
// the one-shot ranking no matter how the caller pages.
//
// Negation is relative to the index, like every Focus answer: "no bus"
// means "not matched by a bus query at this watermark", inheriting the
// same approximate-recall contract as a positive bus query (§4.1). Plans
// must be anchored — at least one positive conjunct on every Or branch —
// because an unanchored predicate ("!bus" alone) would describe the
// unbounded complement of the index.
package plan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LeafOptions are the per-leaf retrieval knobs, mirroring the single-class
// query.Options a leaf compiles into. The execution layer supplies the
// watermark (MaxSealSec) and GPU parallelism; leaves only shape retrieval.
type LeafOptions struct {
	// Kx, when in [1, K), restricts retrieval to clusters ranking the class
	// within their top-Kx (§5). Zero uses the index's full K.
	Kx int
	// StartSec/EndSec restrict the leaf to a time window; EndSec <= 0 means
	// unbounded.
	StartSec, EndSec float64
	// MaxClusters caps how many clusters the leaf retrieves, in postings
	// order — the same budget semantics as query.Options.MaxClusters.
	MaxClusters int
}

// Expr is a node of the predicate AST: Leaf, And, Or, or Not.
type Expr interface {
	// canon renders the canonical form used for plan hashing.
	canon(b *strings.Builder)
	// anchored reports whether every frame satisfying the expression is
	// guaranteed to appear in some positive leaf's matches.
	anchored() bool
	// walk visits every leaf with its polarity (false under an odd number
	// of Nots).
	walk(positive bool, fn func(l *Leaf, positive bool))
}

// Leaf is one single-class predicate with its own retrieval options.
type Leaf struct {
	// Class is the class name ("car", "person", …), resolved at compile
	// time against the system's class space.
	Class string
	// Opts shape this leaf's retrieval; the zero value inherits the
	// execution options' DefaultLeaf.
	Opts LeafOptions
}

// And is the conjunction of its children.
type And struct{ Children []Expr }

// Or is the disjunction of its children.
type Or struct{ Children []Expr }

// Not negates its child.
type Not struct{ Child Expr }

// ---- temporal operators (track predicates) ----
//
// The nodes below predicate over object *tracks* — chains of sightings of
// one physical object associated across adjacent frames — instead of
// frames. They share the AST, canonical form, and text syntax with the
// boolean operators, but compile onto the track execution path
// (internal/track): plan.Compile rejects any expression containing them,
// and the wire layer answers them in the "tracks" response form.
//
// Spatial matchers (Region, and Seq/Within over matchers) test *where and
// when within one track* something happens; Dur and Vel test whole-track
// aggregates; class leaves keep their usual meaning, applied to the
// track's dominant cluster. Anchoring is irrelevant here: the track
// population at a watermark is already bounded by the index (every track
// is assembled from indexed sightings), so a track-level negation like
// "!car" ranges over that finite population, never over the unbounded
// complement of the index.

// Seq matches a track containing matches for every child matcher in
// temporal order: sightings at strictly increasing positions along the
// track satisfy child 0, then child 1, and so on ("car that crosses the
// left region, then the right region"). Children must be spatial matchers
// (Region, or nested Seq/Within).
type Seq struct{ Children []Expr }

// Within bounds a matcher's time span: the track must contain a match of
// Child whose first-to-last sighting timestamps span at most DSec seconds
// ("crosses left-to-right within 5 seconds"). Child must be a spatial
// matcher (Region, or nested Seq/Within).
type Within struct {
	// DSec is the maximum allowed span in seconds (inclusive).
	DSec float64
	// Child is the matcher whose span is bounded.
	Child Expr
}

// Dur is a leaf predicate on a track's duration (last sighting timestamp
// minus first): MinSec <= duration, and duration <= MaxSec when MaxSec is
// positive ("person lingering more than 30 seconds" is dur(30)).
type Dur struct{ MinSec, MaxSec float64 }

// Region is a spatial leaf matcher: a sighting matches when its bounding
// box intersects the axis-aligned rectangle with corners (X0,Y0) and
// (X1,Y1) in frame coordinates; a track satisfies a bare Region when any
// of its sightings match. Compile-time validation requires X1 > X0 and
// Y1 > Y0.
type Region struct{ X0, Y0, X1, Y1 int }

// Vel is a leaf predicate on a track's mean speed — bbox-center path
// length divided by duration, in pixels/second: Min <= speed, and
// speed <= Max when Max is positive. Single-sighting tracks have speed 0.
type Vel struct{ Min, Max float64 }

func (l *Leaf) canon(b *strings.Builder) {
	b.WriteString(l.Class)
	if l.Opts != (LeafOptions{}) {
		fmt.Fprintf(b, "[kx=%d,s=%g,e=%g,m=%d]",
			l.Opts.Kx, l.Opts.StartSec, l.Opts.EndSec, l.Opts.MaxClusters)
	}
}

func canonChildren(b *strings.Builder, op string, children []Expr) {
	b.WriteByte('(')
	for i, c := range children {
		if i > 0 {
			b.WriteString(op)
		}
		c.canon(b)
	}
	b.WriteByte(')')
}

func (a *And) canon(b *strings.Builder) { canonChildren(b, "&", a.Children) }
func (o *Or) canon(b *strings.Builder)  { canonChildren(b, "|", o.Children) }
func (n *Not) canon(b *strings.Builder) {
	b.WriteByte('!')
	n.Child.canon(b)
}

// The temporal canonical forms reuse the text syntax's function-call
// spelling, so canonical strings round-trip through Parse like the boolean
// forms do.
func (s *Seq) canon(b *strings.Builder) {
	b.WriteString("seq(")
	for i, c := range s.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.canon(b)
	}
	b.WriteByte(')')
}
func (w *Within) canon(b *strings.Builder) {
	fmt.Fprintf(b, "within(%g,", w.DSec)
	w.Child.canon(b)
	b.WriteByte(')')
}
func (d *Dur) canon(b *strings.Builder) { fmt.Fprintf(b, "dur(%g,%g)", d.MinSec, d.MaxSec) }
func (r *Region) canon(b *strings.Builder) {
	fmt.Fprintf(b, "region(%d,%d,%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}
func (v *Vel) canon(b *strings.Builder) { fmt.Fprintf(b, "vel(%g,%g)", v.Min, v.Max) }

// A leaf anchors itself; a conjunction is anchored by any anchored child; a
// disjunction needs every branch anchored (an unanchored branch admits
// frames outside the index). Negation flips to the De Morgan dual: !e is
// anchored exactly when e's complement is — so "!!car" anchors ("car"
// does) while "!bus" does not.
func (l *Leaf) anchored() bool { return true }
func (a *And) anchored() bool {
	for _, c := range a.Children {
		if c.anchored() {
			return true
		}
	}
	return false
}
func (o *Or) anchored() bool {
	if len(o.Children) == 0 {
		return false
	}
	for _, c := range o.Children {
		if !c.anchored() {
			return false
		}
	}
	return true
}
func (n *Not) anchored() bool { return complementAnchored(n.Child) }

// Temporal predicates range over the finite track population at the
// watermark, so they are inherently anchored (see the section comment
// above Seq).
func (s *Seq) anchored() bool    { return true }
func (w *Within) anchored() bool { return true }
func (d *Dur) anchored() bool    { return true }
func (r *Region) anchored() bool { return true }
func (v *Vel) anchored() bool    { return true }

// complementAnchored reports whether the complement of e is anchored:
// ¬leaf never is; ¬(a∧b) = ¬a∨¬b needs every branch's complement anchored;
// ¬(a∨b) = ¬a∧¬b needs any; ¬¬e is e.
func complementAnchored(e Expr) bool {
	switch x := e.(type) {
	case *Leaf:
		return false
	case *And:
		if len(x.Children) == 0 {
			return false
		}
		for _, c := range x.Children {
			if !complementAnchored(c) {
				return false
			}
		}
		return true
	case *Or:
		for _, c := range x.Children {
			if complementAnchored(c) {
				return true
			}
		}
		return false
	case *Not:
		return x.Child.anchored()
	default:
		return false
	}
}

func (l *Leaf) walk(positive bool, fn func(*Leaf, bool)) { fn(l, positive) }
func (a *And) walk(positive bool, fn func(*Leaf, bool)) {
	for _, c := range a.Children {
		c.walk(positive, fn)
	}
}
func (o *Or) walk(positive bool, fn func(*Leaf, bool)) {
	for _, c := range o.Children {
		c.walk(positive, fn)
	}
}
func (n *Not) walk(positive bool, fn func(*Leaf, bool)) { n.Child.walk(!positive, fn) }

// Temporal leaves contain no class leaves; Seq/Within recurse for
// completeness even though compile-time validation keeps class leaves out
// of matcher position.
func (s *Seq) walk(positive bool, fn func(*Leaf, bool)) {
	for _, c := range s.Children {
		c.walk(positive, fn)
	}
}
func (w *Within) walk(positive bool, fn func(*Leaf, bool)) { w.Child.walk(positive, fn) }
func (d *Dur) walk(bool, func(*Leaf, bool))                {}
func (r *Region) walk(bool, func(*Leaf, bool))             {}
func (v *Vel) walk(bool, func(*Leaf, bool))                {}

// HasTemporal reports whether the expression contains any temporal
// operator (Seq, Within, Dur, Region, Vel) — syntactically, with no class
// space needed, so the router and serve layer use it to route an
// expression to the track execution path before compiling anything.
func HasTemporal(e Expr) bool {
	switch x := e.(type) {
	case *Seq, *Within, *Dur, *Region, *Vel:
		return true
	case *And:
		for _, c := range x.Children {
			if HasTemporal(c) {
				return true
			}
		}
	case *Or:
		for _, c := range x.Children {
			if HasTemporal(c) {
				return true
			}
		}
	case *Not:
		return HasTemporal(x.Child)
	}
	return false
}

// Canonical renders the expression's canonical text form: fully
// parenthesized, with non-default leaf options inlined. Two expressions
// with the same canonical form execute identically, which is what the
// serve layer's result cache keys plans on.
func Canonical(e Expr) string {
	var b strings.Builder
	e.canon(&b)
	return b.String()
}

// ---- text syntax ----

// Parse compiles the small text syntax used by the CLI and the /plan
// endpoint into an AST:
//
//	expr  := or
//	or    := and ("|" and)*
//	and   := unary ("&" unary)*
//	unary := "!" unary | "(" expr ")" | call | class
//	call  := "seq" "(" expr ("," expr)+ ")"
//	       | "within" "(" number "," expr ")"
//	       | "dur" "(" number ["," number] ")"
//	       | "region" "(" number "," number "," number "," number ")"
//	       | "vel" "(" number ["," number] ")"
//
// Class names are [A-Za-z0-9_]+; whitespace is ignored. Example:
// "car & person & !bus", or temporal: "car & within(5, seq(region(0,0,
// 320,720), region(960,0,1280,720)))". The five call names are keywords
// only when followed by "(" — a class named "seq" still parses as a class.
// Leaf options cannot be spelled in text — build the AST directly for
// per-leaf windows or budgets.
//
// Parse errors carry the byte offset and a quoted window of the input
// around the offending token, so they stay actionable after the wire
// layer wraps them into a bad_expr api.Error.
func Parse(s string) (Expr, error) {
	p := &parser{input: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if c := p.peek(); c != 0 {
		return nil, p.errAt(p.pos, "unexpected %q", c)
	}
	return e, nil
}

type parser struct {
	input string
	pos   int
}

// errAt builds a parse error pointing at a byte offset, appending the
// offset and a context window of the input around it.
func (p *parser) errAt(pos int, format string, args ...any) error {
	const window = 12
	lo, hi := pos-window, pos+window
	if lo < 0 {
		lo = 0
	}
	if hi > len(p.input) {
		hi = len(p.input)
	}
	ctx := p.input[lo:hi]
	if lo > 0 {
		ctx = "…" + ctx
	}
	if hi < len(p.input) {
		ctx += "…"
	}
	return fmt.Errorf("plan: %s at offset %d (near %q)", fmt.Sprintf(format, args...), pos, ctx)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' ||
		p.input[p.pos] == '\n' || p.input[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Expr{first}
	for p.peek() == '|' {
		p.pos++
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return &Or{Children: children}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Expr{first}
	for p.peek() == '&' {
		p.pos++
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return &And{Children: children}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch c := p.peek(); {
	case c == '!':
		p.pos++
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Child: child}, nil
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, p.errAt(p.pos, "missing ')'")
		}
		p.pos++
		return e, nil
	case isIdent(c):
		start := p.pos
		for p.pos < len(p.input) && isIdent(p.input[p.pos]) {
			p.pos++
		}
		name := p.input[start:p.pos]
		if isCallKeyword(name) && p.peek() == '(' {
			return p.parseCall(name, start)
		}
		return &Leaf{Class: name}, nil
	case c == 0:
		return nil, p.errAt(p.pos, "unexpected end of expression")
	default:
		return nil, p.errAt(p.pos, "unexpected %q", c)
	}
}

func isCallKeyword(name string) bool {
	switch name {
	case "seq", "within", "dur", "region", "vel":
		return true
	}
	return false
}

// parseCall parses one temporal function call; the leading keyword has
// been consumed and the next token is known to be "(". callPos is the
// keyword's offset, used for arity errors.
func (p *parser) parseCall(name string, callPos int) (Expr, error) {
	p.pos++ // consume '('
	switch name {
	case "seq":
		var children []Expr
		for {
			child, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			children = append(children, child)
			if p.peek() != ',' {
				break
			}
			p.pos++
		}
		if err := p.expectClose(name); err != nil {
			return nil, err
		}
		if len(children) < 2 {
			return nil, p.errAt(callPos, "seq needs at least 2 steps, got %d", len(children))
		}
		return &Seq{Children: children}, nil
	case "within":
		d, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if p.peek() != ',' {
			return nil, p.errAt(p.pos, "within needs a matcher after the duration")
		}
		p.pos++
		child, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectClose(name); err != nil {
			return nil, err
		}
		return &Within{DSec: d, Child: child}, nil
	case "region":
		nums, err := p.parseNumberList(name, 4, 4)
		if err != nil {
			return nil, err
		}
		return &Region{X0: int(nums[0]), Y0: int(nums[1]), X1: int(nums[2]), Y1: int(nums[3])}, nil
	case "dur":
		nums, err := p.parseNumberList(name, 1, 2)
		if err != nil {
			return nil, err
		}
		d := &Dur{MinSec: nums[0]}
		if len(nums) == 2 {
			d.MaxSec = nums[1]
		}
		return d, nil
	default: // vel
		nums, err := p.parseNumberList(name, 1, 2)
		if err != nil {
			return nil, err
		}
		v := &Vel{Min: nums[0]}
		if len(nums) == 2 {
			v.Max = nums[1]
		}
		return v, nil
	}
}

// parseNumberList parses between min and max comma-separated numbers
// followed by the call's closing ")".
func (p *parser) parseNumberList(name string, min, max int) ([]float64, error) {
	var nums []float64
	for {
		n, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		nums = append(nums, n)
		if p.peek() != ',' {
			break
		}
		p.pos++
	}
	if err := p.expectClose(name); err != nil {
		return nil, err
	}
	if len(nums) < min || len(nums) > max {
		want := fmt.Sprintf("%d", min)
		if max != min {
			want = fmt.Sprintf("%d to %d", min, max)
		}
		return nil, p.errAt(p.pos, "%s needs %s numbers, got %d", name, want, len(nums))
	}
	return nums, nil
}

func (p *parser) expectClose(name string) error {
	if p.peek() != ')' {
		return p.errAt(p.pos, "missing ')' closing %s", name)
	}
	p.pos++
	return nil
}

// parseNumber parses an optionally signed decimal literal.
func (p *parser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.input) && (p.input[p.pos] == '-' || p.input[p.pos] == '+') {
		p.pos++
	}
	for p.pos < len(p.input) && (p.input[p.pos] >= '0' && p.input[p.pos] <= '9' || p.input[p.pos] == '.') {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errAt(start, "expected a number")
	}
	// Optional exponent: canonical forms print through %g, which emits
	// "1e-07"-style notation for extreme magnitudes, and canonical strings
	// must re-parse (cursors carry them back to servers). The exponent is
	// consumed only when well-formed so "1elephant" still reads as the
	// number 1 followed by a syntax error at the identifier.
	if p.pos < len(p.input) && (p.input[p.pos] == 'e' || p.input[p.pos] == 'E') {
		q := p.pos + 1
		if q < len(p.input) && (p.input[q] == '+' || p.input[q] == '-') {
			q++
		}
		if q < len(p.input) && p.input[q] >= '0' && p.input[q] <= '9' {
			p.pos = q
			for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
				p.pos++
			}
		}
	}
	n, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return 0, p.errAt(start, "bad number %q", p.input[start:p.pos])
	}
	return n, nil
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// leafKeys returns the distinct (class, options) leaf keys of an
// expression, sorted, for tests and diagnostics.
func leafKeys(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	e.walk(true, func(l *Leaf, _ bool) {
		var b strings.Builder
		l.canon(&b)
		if k := b.String(); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	})
	sort.Strings(out)
	return out
}
