// Package plan is Focus's compound query planner: it answers boolean
// multi-class predicates — "frames with a car AND a person but NO bus" —
// by compiling a predicate AST (And/Or/Not over per-class leaf queries)
// into a DAG of retrieval and verification calls against the existing
// per-stream query engines, then ranking the matching frames by aggregate
// class confidence.
//
// The planner composes the paper's single-class primitives (§5: top-K
// retrieval, Kx cuts, MaxClusters budgets, GT-CNN verification) without
// changing their cost model:
//
//   - Retrieval per leaf is index-only and therefore cheap; its candidate
//     count is the leaf's selectivity estimate.
//   - GT-CNN verification — the expensive step — is shared across leaves:
//     verdicts are memoized per object cluster in the engine's verdict
//     cache, so a cluster mentioned by three predicates is verified once
//     (§6.7), and verification is ordered most-selective-leaf-first so
//     frames ruled out early let later leaves skip whole clusters
//     (short-circuit evaluation).
//   - Execution pinned to a watermark vector is a pure function of
//     (plan, options, vector): the serve layer caches plan results under
//     the plan's canonical form exactly like single-class queries.
//
// Results stream through a Cursor whose Next(n) extends the per-leaf
// examined-cluster budget incrementally and emits a frame only once its
// rank is provably final, so the page sequence concatenates to exactly
// the one-shot ranking no matter how the caller pages.
//
// Negation is relative to the index, like every Focus answer: "no bus"
// means "not matched by a bus query at this watermark", inheriting the
// same approximate-recall contract as a positive bus query (§4.1). Plans
// must be anchored — at least one positive conjunct on every Or branch —
// because an unanchored predicate ("!bus" alone) would describe the
// unbounded complement of the index.
package plan

import (
	"fmt"
	"sort"
	"strings"
)

// LeafOptions are the per-leaf retrieval knobs, mirroring the single-class
// query.Options a leaf compiles into. The execution layer supplies the
// watermark (MaxSealSec) and GPU parallelism; leaves only shape retrieval.
type LeafOptions struct {
	// Kx, when in [1, K), restricts retrieval to clusters ranking the class
	// within their top-Kx (§5). Zero uses the index's full K.
	Kx int
	// StartSec/EndSec restrict the leaf to a time window; EndSec <= 0 means
	// unbounded.
	StartSec, EndSec float64
	// MaxClusters caps how many clusters the leaf retrieves, in postings
	// order — the same budget semantics as query.Options.MaxClusters.
	MaxClusters int
}

// Expr is a node of the predicate AST: Leaf, And, Or, or Not.
type Expr interface {
	// canon renders the canonical form used for plan hashing.
	canon(b *strings.Builder)
	// anchored reports whether every frame satisfying the expression is
	// guaranteed to appear in some positive leaf's matches.
	anchored() bool
	// walk visits every leaf with its polarity (false under an odd number
	// of Nots).
	walk(positive bool, fn func(l *Leaf, positive bool))
}

// Leaf is one single-class predicate with its own retrieval options.
type Leaf struct {
	// Class is the class name ("car", "person", …), resolved at compile
	// time against the system's class space.
	Class string
	// Opts shape this leaf's retrieval; the zero value inherits the
	// execution options' DefaultLeaf.
	Opts LeafOptions
}

// And is the conjunction of its children.
type And struct{ Children []Expr }

// Or is the disjunction of its children.
type Or struct{ Children []Expr }

// Not negates its child.
type Not struct{ Child Expr }

func (l *Leaf) canon(b *strings.Builder) {
	b.WriteString(l.Class)
	if l.Opts != (LeafOptions{}) {
		fmt.Fprintf(b, "[kx=%d,s=%g,e=%g,m=%d]",
			l.Opts.Kx, l.Opts.StartSec, l.Opts.EndSec, l.Opts.MaxClusters)
	}
}

func canonChildren(b *strings.Builder, op string, children []Expr) {
	b.WriteByte('(')
	for i, c := range children {
		if i > 0 {
			b.WriteString(op)
		}
		c.canon(b)
	}
	b.WriteByte(')')
}

func (a *And) canon(b *strings.Builder) { canonChildren(b, "&", a.Children) }
func (o *Or) canon(b *strings.Builder)  { canonChildren(b, "|", o.Children) }
func (n *Not) canon(b *strings.Builder) {
	b.WriteByte('!')
	n.Child.canon(b)
}

// A leaf anchors itself; a conjunction is anchored by any anchored child; a
// disjunction needs every branch anchored (an unanchored branch admits
// frames outside the index). Negation flips to the De Morgan dual: !e is
// anchored exactly when e's complement is — so "!!car" anchors ("car"
// does) while "!bus" does not.
func (l *Leaf) anchored() bool { return true }
func (a *And) anchored() bool {
	for _, c := range a.Children {
		if c.anchored() {
			return true
		}
	}
	return false
}
func (o *Or) anchored() bool {
	if len(o.Children) == 0 {
		return false
	}
	for _, c := range o.Children {
		if !c.anchored() {
			return false
		}
	}
	return true
}
func (n *Not) anchored() bool { return complementAnchored(n.Child) }

// complementAnchored reports whether the complement of e is anchored:
// ¬leaf never is; ¬(a∧b) = ¬a∨¬b needs every branch's complement anchored;
// ¬(a∨b) = ¬a∧¬b needs any; ¬¬e is e.
func complementAnchored(e Expr) bool {
	switch x := e.(type) {
	case *Leaf:
		return false
	case *And:
		if len(x.Children) == 0 {
			return false
		}
		for _, c := range x.Children {
			if !complementAnchored(c) {
				return false
			}
		}
		return true
	case *Or:
		for _, c := range x.Children {
			if complementAnchored(c) {
				return true
			}
		}
		return false
	case *Not:
		return x.Child.anchored()
	default:
		return false
	}
}

func (l *Leaf) walk(positive bool, fn func(*Leaf, bool)) { fn(l, positive) }
func (a *And) walk(positive bool, fn func(*Leaf, bool)) {
	for _, c := range a.Children {
		c.walk(positive, fn)
	}
}
func (o *Or) walk(positive bool, fn func(*Leaf, bool)) {
	for _, c := range o.Children {
		c.walk(positive, fn)
	}
}
func (n *Not) walk(positive bool, fn func(*Leaf, bool)) { n.Child.walk(!positive, fn) }

// Canonical renders the expression's canonical text form: fully
// parenthesized, with non-default leaf options inlined. Two expressions
// with the same canonical form execute identically, which is what the
// serve layer's result cache keys plans on.
func Canonical(e Expr) string {
	var b strings.Builder
	e.canon(&b)
	return b.String()
}

// ---- text syntax ----

// Parse compiles the small text syntax used by the CLI and the /plan
// endpoint into an AST:
//
//	expr  := or
//	or    := and ("|" and)*
//	and   := unary ("&" unary)*
//	unary := "!" unary | "(" expr ")" | class
//
// Class names are [A-Za-z0-9_]+; whitespace is ignored. Example:
// "car & person & !bus". Leaf options cannot be spelled in text — build
// the AST directly for per-leaf windows or budgets.
func Parse(s string) (Expr, error) {
	p := &parser{input: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, fmt.Errorf("plan: unexpected %q at offset %d in %q", p.input[p.pos], p.pos, s)
	}
	return e, nil
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' ||
		p.input[p.pos] == '\n' || p.input[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Expr{first}
	for p.peek() == '|' {
		p.pos++
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return &Or{Children: children}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Expr{first}
	for p.peek() == '&' {
		p.pos++
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return first, nil
	}
	return &And{Children: children}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch c := p.peek(); {
	case c == '!':
		p.pos++
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Child: child}, nil
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("plan: missing ')' at offset %d in %q", p.pos, p.input)
		}
		p.pos++
		return e, nil
	case isIdent(c):
		start := p.pos
		for p.pos < len(p.input) && isIdent(p.input[p.pos]) {
			p.pos++
		}
		return &Leaf{Class: p.input[start:p.pos]}, nil
	case c == 0:
		return nil, fmt.Errorf("plan: unexpected end of expression in %q", p.input)
	default:
		return nil, fmt.Errorf("plan: unexpected %q at offset %d in %q", c, p.pos, p.input)
	}
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// leafKeys returns the distinct (class, options) leaf keys of an
// expression, sorted, for tests and diagnostics.
func leafKeys(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	e.walk(true, func(l *Leaf, _ bool) {
		var b strings.Builder
		l.canon(&b)
		if k := b.String(); !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	})
	sort.Strings(out)
	return out
}
