package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"focus"
	"focus/api"
)

// This file is the shard side of live stream handoff (DESIGN.md §12): the
// /v1/admin/* endpoints a reshard coordinator drives, and the seal
// machinery that parks one stream's ingestion at a watermark boundary
// while its checkpoint ships to another shard. Like /drain, the admin
// surface is unauthenticated and must stay inside the trust boundary.
//
// Handoff protocol, from this shard's point of view:
//
//	source:      seal → export ················· release (or resume = abort)
//	destination:               import → activate (or release = abort)
//
// Crash safety is TTL-based on both sides: a sealed stream auto-resumes
// ingestion when no release/resume arrives within HandoffTTL (the
// coordinator died before the ownership flip, so the stream is still
// ours), and an imported-but-unactivated stream is auto-discarded on the
// same clock (the flip never happened, so it never becomes ours). Either
// way exactly one shard ends up serving the stream, and every client-
// visible failure mode during the window is a typed not_ready/unavailable.

// DefaultHandoffTTL bounds how long a handoff may stay half-done: a
// sealed source stream auto-resumes, and an unactivated imported stream
// is auto-discarded, this long after the step that created the state.
const DefaultHandoffTTL = 60 * time.Second

// sealRendezvous bounds how long the admin handlers wait for the
// stream's ingester goroutine to reach a seal point (one AdvanceLive
// chunk is the expected wait).
const sealRendezvous = 30 * time.Second

// ingestCtl is the per-stream handle the admin surface uses to talk to
// the stream's ingester goroutine (ingestLoop).
type ingestCtl struct {
	// sealReq hands a seal request to the ingest loop; unbuffered, so a
	// completed send means the loop took it.
	sealReq chan *sealWait
	// loopDone is closed when the ingest loop exits (window finished,
	// server stopped, or stream released).
	loopDone chan struct{}

	mu sync.Mutex
	// loopRunning is set while an ingestLoop goroutine owns the session.
	loopRunning bool
	// sealed/sealedWM report a parked stream and its frozen watermark.
	sealed   bool
	sealedWM float64
	// release, non-nil while parked, unparks the loop: true resumes
	// ingestion (abort), false makes the loop exit (stream moving away).
	release chan bool
	// sealTimer auto-clears a quiescent seal (finished window, no parked
	// ingester) after the handoff TTL — the quiescent twin of holdSeal's
	// auto-resume.
	sealTimer *time.Timer
}

// sealWait is one seal request's rendezvous with the ingest loop.
type sealWait struct {
	done    chan struct{}
	wm      float64
	err     error
	release chan bool
}

func (s *Server) handoffTTL() time.Duration {
	if s.cfg.HandoffTTL > 0 {
		return s.cfg.HandoffTTL
	}
	return DefaultHandoffTTL
}

// ctlFor returns (creating on first use) the stream's ingest control.
func (s *Server) ctlFor(stream string) *ingestCtl {
	s.handoffMu.Lock()
	defer s.handoffMu.Unlock()
	ctl, ok := s.ctls[stream]
	if !ok {
		ctl = &ingestCtl{sealReq: make(chan *sealWait), loopDone: make(chan struct{})}
		s.ctls[stream] = ctl
	}
	return ctl
}

// isHidden reports whether the stream is imported but not yet activated.
func (s *Server) isHidden(stream string) bool {
	s.handoffMu.Lock()
	defer s.handoffMu.Unlock()
	return s.hidden[stream]
}

// isMoved reports whether the stream was released to another shard.
func (s *Server) isMoved(stream string) bool {
	s.handoffMu.Lock()
	defer s.handoffMu.Unlock()
	return s.moved[stream]
}

// holdSeal runs on the ingester goroutine: it checkpoints the stream at
// the current watermark boundary, publishes the seal, and parks until
// released, resumed by TTL, or the server stops. Returns true to resume
// ingestion, false when the loop must exit (handoff completed or server
// stopping; the caller stops the generator).
func (s *Server) holdSeal(sess *focus.Session, ctl *ingestCtl, sw *sealWait) bool {
	if err := sess.CheckpointLive(); err != nil {
		s.handoffErrs.Add(1)
		sw.err = err
		close(sw.done)
		return true
	}
	s.seals.Add(1)
	wm := sess.Watermark()
	ctl.mu.Lock()
	ctl.sealed, ctl.sealedWM, ctl.release = true, wm, sw.release
	ctl.mu.Unlock()
	sw.wm = wm
	close(sw.done)

	resume := true
	ttl := time.NewTimer(s.handoffTTL())
	select {
	case resume = <-sw.release:
	case <-ttl.C:
		// The coordinator died mid-handoff. Ownership flips only after a
		// successful import, and release follows the flip — so a seal
		// left holding past the TTL means the flip never committed from
		// our side's point of view: the stream is still ours, resume it.
	case <-s.stopCh:
		resume = false
	}
	ttl.Stop()
	ctl.mu.Lock()
	ctl.sealed, ctl.release = false, nil
	ctl.mu.Unlock()
	return resume
}

// parkStream seals a stream at its current watermark boundary: the
// ingester checkpoints and parks, and the stream's answers freeze there.
// Idempotent while parked. Streams whose window already finished (their
// ingest loop exited after a final checkpoint) seal trivially.
func (s *Server) parkStream(sess *focus.Session) (float64, *api.Error) {
	name := sess.Name()
	ctl := s.ctlFor(name)
	for attempt := 0; ; attempt++ {
		ctl.mu.Lock()
		if ctl.sealed {
			wm := ctl.sealedWM
			ctl.mu.Unlock()
			return wm, nil
		}
		running := ctl.loopRunning
		ctl.mu.Unlock()
		loopExited := false
		if running {
			select {
			case <-ctl.loopDone:
				loopExited = true
			default:
			}
		}
		if !running || loopExited {
			// No ingester goroutine owns the session. A finished window is
			// quiescent (the loop took its final checkpoint on the way
			// out), so sealing is just publishing the frozen watermark; an
			// unfinished stream without an ingester (NoBackgroundIngest)
			// has no seal point we can wait for.
			if !sess.LiveDone() {
				return 0, api.Errorf(api.CodeUnavailable,
					"stream %q has no background ingester to seal", name)
			}
			if err := sess.CheckpointLive(); err != nil {
				s.handoffErrs.Add(1)
				return 0, api.Errorf(api.CodeUnavailable, "sealing %q: %v", name, err)
			}
			s.seals.Add(1)
			ctl.mu.Lock()
			ctl.sealed, ctl.sealedWM = true, sess.Watermark()
			wm := ctl.sealedWM
			if ctl.sealTimer != nil {
				ctl.sealTimer.Stop()
			}
			// No ingester goroutine means no holdSeal TTL; give the
			// quiescent seal its own, so a dead coordinator cannot leave
			// the flag behind forever.
			ctl.sealTimer = time.AfterFunc(s.handoffTTL(), func() {
				ctl.mu.Lock()
				if ctl.sealed && ctl.release == nil && !ctl.loopRunning {
					ctl.sealed = false
				}
				ctl.mu.Unlock()
			})
			ctl.mu.Unlock()
			return wm, nil
		}
		sw := &sealWait{done: make(chan struct{}), release: make(chan bool, 1)}
		select {
		case ctl.sealReq <- sw:
		case <-ctl.loopDone:
			// The loop exited between the check and the send (window just
			// finished); take the quiescent path.
			if attempt < 3 {
				continue
			}
			return 0, api.Errorf(api.CodeNotReady, "stream %q: seal pending", name)
		case <-time.After(sealRendezvous):
			return 0, api.Errorf(api.CodeNotReady, "stream %q: seal pending (ingester busy)", name)
		}
		select {
		case <-sw.done:
		case <-time.After(sealRendezvous):
			return 0, api.Errorf(api.CodeNotReady, "stream %q: seal pending (checkpoint in flight)", name)
		}
		if sw.err != nil {
			return 0, api.Errorf(api.CodeUnavailable, "sealing %q: %v", name, sw.err)
		}
		return sw.wm, nil
	}
}

// unparkStream releases a sealed stream's ingester: resume=true continues
// ingestion (handoff aborted), resume=false makes the loop exit (the
// stream moved away). Returns false when the stream was not parked.
func (s *Server) unparkStream(stream string, resume bool) bool {
	ctl := s.ctlFor(stream)
	ctl.mu.Lock()
	rel := ctl.release
	if rel == nil {
		// A quiescent seal (finished window, no parked ingester) has no
		// goroutine to signal: clearing the flag is the whole unpark.
		was := ctl.sealed
		ctl.sealed = false
		if ctl.sealTimer != nil {
			ctl.sealTimer.Stop()
			ctl.sealTimer = nil
		}
		ctl.mu.Unlock()
		return was
	}
	ctl.mu.Unlock()
	select {
	case rel <- resume:
		return true
	default:
		// The park already resolved (TTL auto-resume raced us).
		return false
	}
}

// adminStreamRequest decodes the common {stream} admin body.
func (s *Server) adminStreamRequest(w http.ResponseWriter, r *http.Request) (*focus.Session, string, bool) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "POST a JSON body to %s", r.URL.Path))
		return nil, "", false
	}
	var req api.AdminStreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad %s body: %v", r.URL.Path, err))
		return nil, "", false
	}
	if req.Stream == "" {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "missing required field: stream"))
		return nil, "", false
	}
	sess := s.sys.Session(req.Stream)
	if sess == nil {
		if s.isMoved(req.Stream) {
			s.writeV1Error(w, api.Errorf(api.CodeUnavailable, "stream %q moved to another shard", req.Stream))
			return nil, "", false
		}
		s.writeV1Error(w, api.Errorf(api.CodeUnknownStream, "unknown stream %q", req.Stream))
		return nil, "", false
	}
	return sess, req.Stream, true
}

// handleAdminSeal is POST /v1/admin/seal: park the stream's ingestion at
// a watermark boundary behind a durable checkpoint. Idempotent.
func (s *Server) handleAdminSeal(w http.ResponseWriter, r *http.Request) {
	sess, stream, ok := s.adminStreamRequest(w, r)
	if !ok {
		return
	}
	wm, aerr := s.parkStream(sess)
	if aerr != nil {
		s.writeV1Error(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, api.SealResponse{
		Stream:    stream,
		Watermark: wm,
		Epoch:     s.sys.StreamEpoch(stream),
	})
}

// handleAdminResume is POST /v1/admin/resume: the abort path — a sealed
// stream goes back to normal ingestion. A no-op for unsealed streams.
func (s *Server) handleAdminResume(w http.ResponseWriter, r *http.Request) {
	_, stream, ok := s.adminStreamRequest(w, r)
	if !ok {
		return
	}
	s.unparkStream(stream, true)
	writeJSON(w, http.StatusOK, map[string]string{"stream": stream, "status": "resumed"})
}

// handleAdminExport is POST /v1/admin/export: return a sealed stream's
// checkpoint records — the shard-to-shard handoff payload.
func (s *Server) handleAdminExport(w http.ResponseWriter, r *http.Request) {
	sess, stream, ok := s.adminStreamRequest(w, r)
	if !ok {
		return
	}
	ctl := s.ctlFor(stream)
	ctl.mu.Lock()
	sealed := ctl.sealed
	ctl.mu.Unlock()
	if !sealed {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "stream %q is not sealed; seal before export", stream))
		return
	}
	spec, wm, recs, err := s.sys.ExportStream(stream)
	if err != nil {
		s.handoffErrs.Add(1)
		s.writeV1Error(w, api.Errorf(api.CodeUnavailable, "exporting %q: %v", stream, err))
		return
	}
	rawSpec, err := json.Marshal(spec)
	if err != nil {
		s.handoffErrs.Add(1)
		s.writeV1Error(w, api.Errorf(api.CodeInternal, "encoding spec of %q: %v", stream, err))
		return
	}
	out := api.StreamExport{
		Stream:    stream,
		Spec:      rawSpec,
		Watermark: wm,
		Epoch:     s.sys.StreamEpoch(stream),
		Records:   make([]api.HandoffRecord, len(recs)),
	}
	for i, rec := range recs {
		out.Records[i] = api.HandoffRecord{Key: rec.Key, Value: rec.Value}
	}
	_ = sess // session existence already validated; export reads the store
	writeJSON(w, http.StatusOK, out)
}

// handleAdminImport is POST /v1/admin/import: restore an exported stream
// on this shard, hidden from queries and ownership reports until
// activated. The import auto-discards after HandoffTTL if no activation
// arrives (the coordinator died before the ownership flip).
func (s *Server) handleAdminImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "POST a JSON body to %s", api.PathAdminImport))
		return
	}
	if s.draining.Load() {
		s.writeV1Error(w, api.Errorf(api.CodeDraining, "shard is draining; not accepting stream imports"))
		return
	}
	var exp api.StreamExport
	if err := json.NewDecoder(r.Body).Decode(&exp); err != nil {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad %s body: %v", api.PathAdminImport, err))
		return
	}
	var spec focus.StreamSpec
	if err := json.Unmarshal(exp.Spec, &spec); err != nil {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad stream spec: %v", err))
		return
	}
	if spec.Name == "" || spec.Name != exp.Stream {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "spec name %q does not match stream %q", spec.Name, exp.Stream))
		return
	}
	recs := make([]focus.HandoffRecord, len(exp.Records))
	for i, rec := range exp.Records {
		recs[i] = focus.HandoffRecord{Key: rec.Key, Value: rec.Value}
	}
	if _, err := s.sys.ImportStream(spec, exp.Epoch, recs); err != nil {
		s.handoffErrs.Add(1)
		s.writeV1Error(w, api.Errorf(api.CodeUnavailable, "importing %q: %v", exp.Stream, err))
		return
	}
	s.imports.Add(1)
	name := spec.Name
	s.handoffMu.Lock()
	s.hidden[name] = true
	delete(s.moved, name) // a stream may move back to a shard it once left
	if t := s.importTimers[name]; t != nil {
		t.Stop()
	}
	s.importTimers[name] = time.AfterFunc(s.handoffTTL(), func() { s.discardImport(name) })
	s.handoffMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"stream": name, "watermark": exp.Watermark, "status": "imported"})
}

// discardImport rolls back an imported stream whose activation never
// arrived within the TTL: the ownership flip never committed, so the
// stream is not ours.
func (s *Server) discardImport(name string) {
	s.handoffMu.Lock()
	if !s.hidden[name] {
		s.handoffMu.Unlock()
		return
	}
	delete(s.hidden, name)
	delete(s.importTimers, name)
	s.handoffMu.Unlock()
	s.handoffErrs.Add(1)
	_ = s.sys.RemoveStream(name)
}

// handleAdminActivate is POST /v1/admin/activate: commit an imported
// stream — unhide it and resume its live ingestion tail. From here the
// shard reports the stream (with its new epoch) on /v1/streams.
func (s *Server) handleAdminActivate(w http.ResponseWriter, r *http.Request) {
	sess, stream, ok := s.adminStreamRequest(w, r)
	if !ok {
		return
	}
	s.handoffMu.Lock()
	hidden := s.hidden[stream]
	if hidden {
		delete(s.hidden, stream)
		if t := s.importTimers[stream]; t != nil {
			t.Stop()
			delete(s.importTimers, stream)
		}
	}
	s.handoffMu.Unlock()
	if !hidden {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "stream %q has no pending import to activate", stream))
		return
	}
	if err := s.sys.CommitImport(stream); err != nil {
		s.handoffErrs.Add(1)
		s.writeV1Error(w, api.Errorf(api.CodeUnavailable, "activating %q: %v", stream, err))
		return
	}
	if !s.cfg.NoBackgroundIngest {
		s.startIngestLoop(sess)
	}
	writeJSON(w, http.StatusOK, map[string]string{"stream": stream, "status": "active"})
}

// handleAdminRelease is POST /v1/admin/release: remove a stream from this
// shard. On a handoff source this completes the move — standing queries
// end with a typed "moved" bye, the session is unregistered, and its
// records are deleted; late queries get a typed unavailable. On a
// destination it rolls an unactivated import back.
func (s *Server) handleAdminRelease(w http.ResponseWriter, r *http.Request) {
	sess, stream, ok := s.adminStreamRequest(w, r)
	if !ok {
		return
	}
	s.handoffMu.Lock()
	hidden := s.hidden[stream]
	if hidden {
		delete(s.hidden, stream)
		if t := s.importTimers[stream]; t != nil {
			t.Stop()
			delete(s.importTimers, stream)
		}
	}
	s.handoffMu.Unlock()
	if hidden {
		// Destination-side abort: the stream never served here.
		if err := s.sys.RemoveStream(stream); err != nil {
			s.handoffErrs.Add(1)
			s.writeV1Error(w, api.Errorf(api.CodeUnavailable, "releasing %q: %v", stream, err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"stream": stream, "status": "released"})
		return
	}
	// Source side: the stream must be quiescent before its session goes
	// away — park the ingester (idempotent when already sealed), then make
	// the loop exit.
	ctl := s.ctlFor(stream)
	ctl.mu.Lock()
	running := ctl.loopRunning
	ctl.mu.Unlock()
	if running {
		if _, aerr := s.parkStream(sess); aerr != nil {
			s.writeV1Error(w, aerr)
			return
		}
		s.unparkStream(stream, false)
		select {
		case <-ctl.loopDone:
		case <-time.After(sealRendezvous):
			s.writeV1Error(w, api.Errorf(api.CodeNotReady, "stream %q: ingester still exiting", stream))
			return
		}
	}
	// Standing queries on the moved stream end with a typed "moved" bye;
	// subscribers resume at their delivered vector against the new owner.
	s.subs.CloseStreams(api.ReasonMoved, stream)
	if err := s.sys.RemoveStream(stream); err != nil {
		s.handoffErrs.Add(1)
		s.writeV1Error(w, api.Errorf(api.CodeUnavailable, "releasing %q: %v", stream, err))
		return
	}
	s.handoffMu.Lock()
	s.moved[stream] = true
	s.handoffMu.Unlock()
	s.releases.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"stream": stream, "status": "released"})
}

// Sealed reports whether the named stream is currently parked at a sealed
// watermark (tests and operators poke this through /v1/stats counters;
// exported for the crash-matrix harness).
func (s *Server) Sealed(stream string) bool {
	ctl := s.ctlFor(stream)
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.sealed
}
