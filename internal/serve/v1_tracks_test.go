package serve_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"focus"
	"focus/api"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

// TestV1TracksForm pins the temporal side of the form decision: an expr
// with a temporal operator answers in the tracks form (and only that
// form), a boolean expr cannot be forced into it, and temporal syntax
// errors surface the parser's offset/context detail through the wire
// error message.
func TestV1TracksForm(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	// Tracks assemble from sealed clusters only, and a cluster seals ~20s
	// (the ingest idle timeout) after its object leaves — advance deep
	// enough into the 60s window that the pinned horizon holds plenty.
	s.advanceAll(t, 45)
	cli := v1Client(s)
	ctx := context.Background()

	resp, err := cli.Query(ctx, &api.QueryRequest{Expr: "car & dur(1)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Form != api.FormTracks || resp.Tracks == nil || resp.Items != nil || resp.Streams != nil {
		t.Fatalf("temporal expr answered %q form: %+v", resp.Form, resp)
	}
	if len(resp.Tracks) == 0 {
		t.Fatal("temporal query matched nothing; pick a denser window")
	}
	if resp.TotalItems != len(resp.Tracks) {
		t.Fatalf("TotalItems %d, %d tracks", resp.TotalItems, len(resp.Tracks))
	}
	if err := loadgen.NewDirectTrackVerifier(s.sys)(resp); err != nil {
		t.Fatalf("tracks response diverges from direct: %v", err)
	}

	// An explicit tracks form is accepted and hits the response cache.
	again, err := cli.Query(ctx, &api.QueryRequest{Expr: "car & dur(1)", Form: api.FormTracks,
		At: resp.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical pinned track query re-executed instead of hitting the cache")
	}
	if !reflect.DeepEqual(again.Tracks, resp.Tracks) {
		t.Fatal("cached track answer diverges from the original")
	}
	if stats := s.srv.Snapshot(); stats.TrackQueries < 2 {
		t.Errorf("track_queries counter %d, want >= 2", stats.TrackQueries)
	}

	// Form mismatches reject in both directions with bad_request.
	if _, err := cli.Query(ctx, &api.QueryRequest{Expr: "car", Form: api.FormTracks}); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("tracks form on boolean expr: %v, want code bad_request", err)
	}
	if _, err := cli.Query(ctx, &api.QueryRequest{Expr: "car & dur(1)", Form: api.FormRanked}); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("ranked form on temporal expr: %v, want code bad_request", err)
	}

	// Temporal syntax errors carry the parser's offset and quoted context
	// all the way to the client.
	_, err = cli.Query(ctx, &api.QueryRequest{Expr: "seq(car & dur("})
	if !api.IsCode(err, api.CodeBadExpr) {
		t.Fatalf("temporal syntax error: %v, want code bad_expr", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "at offset") || !strings.Contains(msg, "near") {
		t.Errorf("syntax error lost the parser's offset/context detail: %q", msg)
	}
}

// TestV1TracksCursorPagedEqualsOneShot is the tracks-form twin of
// TestV1CursorPagedEqualsOneShot: cursor pages stay pinned to the first
// page's watermark vector while ingest advances, share one cached
// execution (no new GPU work), and concatenate bit-identically to the
// one-shot answer at that vector.
func TestV1TracksCursorPagedEqualsOneShot(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	s.advanceAll(t, 45)
	cli := v1Client(s)
	ctx := context.Background()

	first, err := cli.Query(ctx, &api.QueryRequest{Expr: "car & dur(1)", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Form != api.FormTracks {
		t.Fatalf("answered %q form", first.Form)
	}
	if first.TotalItems < 3 {
		t.Fatalf("only %d tracks; pick a denser window", first.TotalItems)
	}
	if first.Cursor == "" {
		t.Fatal("first page carries no continuation cursor")
	}

	// Ingest advances between page fetches; the cursor must keep every
	// later page pinned to the original vector.
	s.advanceAll(t, 60)
	gpuBefore := s.sys.GPUMeter()

	tracks := append([]api.TrackItem(nil), first.Tracks...)
	cursor := first.Cursor
	for cursor != "" {
		page, err := cli.Query(ctx, &api.QueryRequest{Cursor: cursor, Limit: 2})
		if err != nil {
			t.Fatal(err)
		}
		if page.Form != api.FormTracks {
			t.Fatalf("cursor page answered %q form", page.Form)
		}
		if !page.Cached {
			t.Fatal("cursor page re-executed instead of reading the pinned execution")
		}
		if !reflect.DeepEqual(page.Watermarks, first.Watermarks) {
			t.Fatalf("cursor page executed at %v, pinned %v", page.Watermarks, first.Watermarks)
		}
		tracks = append(tracks, page.Tracks...)
		cursor = page.Cursor
	}
	if got := s.sys.GPUMeter(); got.QueryMS != gpuBefore.QueryMS {
		t.Errorf("cursor paging consumed %.1f GPU ms; pages must share the cached execution", got.QueryMS-gpuBefore.QueryMS)
	}

	oneShot, err := cli.Query(ctx, &api.QueryRequest{Expr: "car & dur(1)", At: first.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tracks, oneShot.Tracks) {
		t.Fatalf("cursor pages diverge from one-shot:\npaged: %+v\nfull:  %+v", tracks, oneShot.Tracks)
	}

	// CollectTrackPages (the client-side convenience) reaches the same
	// answer and passes the direct verifier.
	assembled, err := cli.CollectTrackPages(ctx, &api.QueryRequest{Expr: "car & dur(1)", At: first.Watermarks}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(assembled.Tracks, oneShot.Tracks) {
		t.Fatal("CollectTrackPages diverges from one-shot")
	}
	if err := loadgen.NewDirectTrackVerifier(s.sys)(assembled); err != nil {
		t.Fatalf("assembled paged track read diverges from direct: %v", err)
	}
}
