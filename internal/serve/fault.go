package serve

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"focus/api"
)

// This file is the fault-injection seam: an opt-in middleware that makes a
// healthy shard misbehave on demand, so the retry, failover, and recovery
// paths can be exercised deterministically instead of waiting for real
// hardware to fail. Three failure shapes cover the taxonomy the router and
// client must survive:
//
//   - Injected errors: a fraction of data-plane requests fail with the
//     structured "unavailable" error — the transient dependency failure a
//     client should retry and a router should ride through.
//   - Added latency: every data-plane request is delayed — the slow-shard
//     regime that exposes timeout and queueing behavior.
//   - A blackhole window: for a configured real-time window the process
//     severs every connection abruptly, without writing a response — the
//     network-partition shape. Unlike the error injections, the blackhole
//     swallows the health surface too: a partitioned shard cannot answer
//     its health checks either, and the router must discover that through
//     its poller, not be told politely.
//
// Injections never corrupt answers: a request either fails loudly (typed
// error, severed connection) or succeeds with the exact response the
// un-faulted server would have produced. Wrong-answer faults are the one
// shape deliberately not offered — the system's contract is that answers
// are bit-exact functions of (plan, options, watermark vector), and no
// operator knob should be able to silently break that.

// FaultConfig arms the fault-injection middleware. The zero value injects
// nothing (and adds no per-request overhead beyond two atomic-free checks).
type FaultConfig struct {
	// ErrorRate is the probability in [0,1] that a data-plane request
	// (query surfaces and stream/stats reads) fails with the structured
	// "unavailable" error instead of executing.
	ErrorRate float64
	// Latency is added to every data-plane request before it executes.
	Latency time.Duration
	// BlackholeAfter and BlackholeFor define the partition window: starting
	// BlackholeAfter after the middleware first sees traffic, every request
	// (health checks included) has its connection severed abruptly for
	// BlackholeFor. BlackholeFor == 0 disables the window.
	BlackholeAfter time.Duration
	BlackholeFor   time.Duration
	// Seed makes the error-rate coin deterministic; 0 means seed 1.
	Seed uint64
}

// Active reports whether this config injects anything.
func (f FaultConfig) Active() bool {
	return f.ErrorRate > 0 || f.Latency > 0 || f.BlackholeFor > 0
}

// faultInjector applies a FaultConfig to an http.Handler.
type faultInjector struct {
	cfg  FaultConfig
	next http.Handler
	srv  *Server

	mu  sync.Mutex
	rng *rand.Rand
	// armed is when the first request arrived — the blackhole clock's zero.
	armed time.Time
}

func newFaultInjector(cfg FaultConfig, srv *Server, next http.Handler) *faultInjector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &faultInjector{
		cfg:  cfg,
		next: next,
		srv:  srv,
		rng:  rand.New(rand.NewSource(int64(seed))),
	}
}

// dataPlanePath reports whether the path carries query/read traffic (as
// opposed to health and lifecycle endpoints). Error and latency injection
// target the data plane only: a shard that fails requests can still answer
// "I am here" — that is the partial-failure shape the router's per-request
// retry handles. Total silence is the blackhole's job.
func dataPlanePath(p string) bool {
	return strings.HasPrefix(p, "/v1/") || p == api.PathLegacyQuery ||
		p == api.PathLegacyPlan || p == "/streams" || p == "/stats"
}

func (f *faultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if f.armed.IsZero() {
		f.armed = time.Now()
	}
	since := time.Since(f.armed)
	inBlackhole := f.cfg.BlackholeFor > 0 &&
		since >= f.cfg.BlackholeAfter && since < f.cfg.BlackholeAfter+f.cfg.BlackholeFor
	injectErr := !inBlackhole && f.cfg.ErrorRate > 0 &&
		dataPlanePath(r.URL.Path) && f.rng.Float64() < f.cfg.ErrorRate
	f.mu.Unlock()

	if inBlackhole {
		f.srv.faultBlackholed.Add(1)
		// Sever the connection without a response — indistinguishable, to
		// the client, from a network partition. If the writer cannot be
		// hijacked (rare: HTTP/2), panicking with ErrAbortHandler aborts the
		// response without a reply, which is the same observable silence.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	if f.cfg.Latency > 0 && dataPlanePath(r.URL.Path) {
		time.Sleep(f.cfg.Latency)
	}
	if injectErr {
		f.srv.faultErrors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{
			Err: api.Errorf(api.CodeUnavailable, "fault injection: simulated dependency failure")})
		return
	}
	f.next.ServeHTTP(w, r)
}
