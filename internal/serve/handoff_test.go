package serve_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/serve"
)

// waitWatermark polls until the stream's served watermark reaches wm.
func waitWatermark(t *testing.T, cli *client.Client, stream string, wm float64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		sts, err := cli.Streams(context.Background())
		if err == nil {
			for _, st := range sts {
				if st.Name == stream && st.Watermark >= wm {
					return
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("stream %s never reached watermark %.0f", stream, wm)
}

// bootEmptyService boots a serve.Server with zero streams — the elastic
// destination shard of a handoff.
func bootEmptyService(t *testing.T, scfg serve.Config) *testService {
	t.Helper()
	scfg.AllowNoStreams = true
	return bootTestService(t, focus.Config{Seed: 1}, scfg)
}

// TestHandoffRoundTrip walks the full shard-side protocol between a
// source and an empty destination: seal → export → import (hidden) →
// activate (serving) → release (moved), asserting the visibility contract
// and bit-identical answers at each stage.
func TestHandoffRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two serve fixtures")
	}
	const stream = "auburn_c"
	scfg := serve.Config{} // full-speed background ingest
	src := bootTestService(t, focus.Config{Seed: 1}, scfg, stream)
	dst := bootEmptyService(t, scfg)
	srcCli := client.New(src.http.URL, client.WithRetries(0, 0))
	dstCli := client.New(dst.http.URL, client.WithRetries(0, 0))
	ctx := context.Background()
	waitWatermark(t, srcCli, stream, 60)

	// Seal: watermark frozen at the boundary, idempotent.
	sealed, err := srcCli.AdminSeal(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if sealed.Watermark != 60 || sealed.Epoch != 0 {
		t.Fatalf("seal reported %+v, want the finished watermark 60 at epoch 0", sealed)
	}
	if again, err := srcCli.AdminSeal(ctx, stream); err != nil || again.Watermark != sealed.Watermark {
		t.Fatalf("second seal (%+v, %v) is not idempotent", again, err)
	}
	if !src.srv.Sealed(stream) {
		t.Fatal("Sealed() false after a successful seal")
	}

	// The source keeps serving the sealed watermark.
	srcAnswer, err := srcCli.Query(ctx, &api.QueryRequest{Expr: "car"})
	if err != nil {
		t.Fatalf("query against a sealed source: %v", err)
	}

	// Export ships the checkpoint; the destination imports it hidden.
	export, err := srcCli.AdminExport(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(export.Records) == 0 || export.Watermark != 60 {
		t.Fatalf("export %d records at wm %.0f, want a non-empty checkpoint at 60", len(export.Records), export.Watermark)
	}
	export.Epoch++
	if err := dstCli.AdminImport(ctx, export); err != nil {
		t.Fatal(err)
	}
	// Hidden: not reported, not queryable — typed not_ready.
	if sts, err := dstCli.Streams(ctx); err != nil || len(sts) != 0 {
		t.Fatalf("destination reports %v mid-import, want nothing (hidden)", sts)
	}
	if _, err := dstCli.Query(ctx, &api.QueryRequest{Expr: "car", Streams: []string{stream}}); !api.IsCode(err, api.CodeNotReady) {
		t.Fatalf("query against a hidden import: %v, want not_ready", err)
	}

	// Activate: the destination serves, bit-identical to the source.
	if err := dstCli.AdminActivate(ctx, stream); err != nil {
		t.Fatal(err)
	}
	waitWatermark(t, dstCli, stream, 60)
	dstAnswer, err := dstCli.Query(ctx, &api.QueryRequest{Expr: "car"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(srcAnswer.Streams, dstAnswer.Streams) || srcAnswer.TotalFrames != dstAnswer.TotalFrames {
		t.Fatalf("destination answer diverges from source: %d frames vs %d", dstAnswer.TotalFrames, srcAnswer.TotalFrames)
	}
	sts, err := dstCli.Streams(ctx)
	if err != nil || len(sts) != 1 || sts[0].Epoch != export.Epoch {
		t.Fatalf("destination reports %+v (%v), want %s at epoch %d", sts, err, stream, export.Epoch)
	}

	// Release: the source drops the stream; late queries get a typed
	// unavailable, and the stream vanishes from its reports.
	if err := srcCli.AdminRelease(ctx, stream); err != nil {
		t.Fatal(err)
	}
	if _, err := srcCli.Query(ctx, &api.QueryRequest{Expr: "car", Streams: []string{stream}}); !api.IsCode(err, api.CodeUnavailable) {
		t.Fatalf("query against the released source: %v, want unavailable", err)
	}
	if sts, err := srcCli.Streams(ctx); err != nil || len(sts) != 0 {
		t.Fatalf("released source still reports %v", sts)
	}
	// Admin calls on the moved stream are typed unavailable too.
	if _, err := srcCli.AdminSeal(ctx, stream); !api.IsCode(err, api.CodeUnavailable) {
		t.Fatalf("seal of a moved stream: %v, want unavailable", err)
	}
	st := src.srv.Snapshot()
	if st.HandoffSeals == 0 || st.HandoffReleases != 1 {
		t.Errorf("source handoff counters %+v, want seals>0 releases=1", st)
	}
}

// TestHandoffTypedErrors pins the admin surface's rejection shapes.
func TestHandoffTypedErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a serve fixture")
	}
	const stream = "auburn_c"
	src := bootTestService(t, focus.Config{Seed: 1}, serve.Config{}, stream)
	cli := client.New(src.http.URL, client.WithRetries(0, 0))
	ctx := context.Background()
	waitWatermark(t, cli, stream, 60)

	if _, err := cli.AdminExport(ctx, stream); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("export of an unsealed stream: %v, want bad_request", err)
	}
	if _, err := cli.AdminSeal(ctx, "nope"); !api.IsCode(err, api.CodeUnknownStream) {
		t.Errorf("seal of an unknown stream: %v, want unknown_stream", err)
	}
	if err := cli.AdminActivate(ctx, stream); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("activate without a pending import: %v, want bad_request", err)
	}
	// Resume of an unsealed stream is a harmless no-op.
	if err := cli.AdminResume(ctx, stream); err != nil {
		t.Errorf("resume of an unsealed stream: %v", err)
	}
	// A malformed spec is rejected before anything registers.
	exp := &api.StreamExport{Stream: stream, Spec: json.RawMessage(`{"name":"other"}`)}
	if err := cli.AdminImport(ctx, exp); !api.IsCode(err, api.CodeBadRequest) {
		t.Errorf("import with a mismatched spec: %v, want bad_request", err)
	}
}

// TestHandoffTTLSelfHeals covers both TTL backstops: a sealed stream
// auto-resumes when no release arrives, and an unactivated import is
// auto-discarded.
func TestHandoffTTLSelfHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two serve fixtures")
	}
	const stream = "auburn_c"
	scfg := serve.Config{HandoffTTL: 300 * time.Millisecond}
	src := bootTestService(t, focus.Config{Seed: 1}, scfg, stream)
	dst := bootEmptyService(t, scfg)
	srcCli := client.New(src.http.URL, client.WithRetries(0, 0))
	dstCli := client.New(dst.http.URL, client.WithRetries(0, 0))
	ctx := context.Background()
	waitWatermark(t, srcCli, stream, 60)

	// Seal, export, import — then the coordinator "dies": no activate, no
	// release ever arrive.
	if _, err := srcCli.AdminSeal(ctx, stream); err != nil {
		t.Fatal(err)
	}
	export, err := srcCli.AdminExport(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	export.Epoch++
	if err := dstCli.AdminImport(ctx, export); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for src.srv.Sealed(stream) {
		if time.Now().After(deadline) {
			t.Fatal("sealed stream never TTL-resumed")
		}
		time.Sleep(25 * time.Millisecond)
	}
	for dst.sys.Session(stream) != nil {
		if time.Now().After(deadline) {
			t.Fatal("unactivated import never TTL-discarded")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// The source still owns and serves the stream; the destination knows
	// nothing of it.
	if _, err := srcCli.Query(ctx, &api.QueryRequest{Expr: "car"}); err != nil {
		t.Fatalf("query after TTL self-heal: %v", err)
	}
	if _, err := dstCli.Query(ctx, &api.QueryRequest{Expr: "car", Streams: []string{stream}}); !api.IsCode(err, api.CodeUnknownStream) {
		t.Fatalf("query on the destination after discard: %v, want unknown_stream", err)
	}
}

// TestStartDiscardsPendingImports: a shard that crashed holding an
// unactivated import must not cold-start into serving it — the ownership
// flip never committed, so the stream is not ours.
func TestStartDiscardsPendingImports(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a serve fixture")
	}
	const stream = "auburn_c"
	src := bootTestService(t, focus.Config{Seed: 1}, serve.Config{}, stream)
	srcCli := client.New(src.http.URL, client.WithRetries(0, 0))
	ctx := context.Background()
	waitWatermark(t, srcCli, stream, 60)
	if _, err := srcCli.AdminSeal(ctx, stream); err != nil {
		t.Fatal(err)
	}
	export, err := srcCli.AdminExport(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}

	// The destination is durable; it imports the stream and then crashes
	// (Abandon, the PR-6 idiom) before any activation commits.
	fcfg := focus.Config{
		Seed: 1, Targets: focus.Targets{Recall: 0.7, Precision: 0.7},
		TuneOptions: serve.QuickTuneOptions(),
		StorePath:   filepath.Join(t.TempDir(), "focus.kv"),
	}
	crashed, err := focus.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	var spec focus.StreamSpec
	if err := json.Unmarshal(export.Spec, &spec); err != nil {
		t.Fatal(err)
	}
	recs := make([]focus.HandoffRecord, len(export.Records))
	for i, rec := range export.Records {
		recs[i] = focus.HandoffRecord{Key: rec.Key, Value: rec.Value}
	}
	if _, err := crashed.ImportStream(spec, export.Epoch+1, recs); err != nil {
		t.Fatal(err)
	}
	if !crashed.PendingImport(stream) {
		t.Fatal("ImportStream did not leave a pending-import marker")
	}
	crashed.Abandon()

	// Cold restart over the same store: the marker must be purged before
	// anything serves, whether or not the stream is configured here.
	sys, err := focus.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if !sys.PendingImport(stream) {
		t.Fatal("pending-import marker did not survive the crash")
	}
	srv := serve.New(sys, serve.Config{
		Window:         focus.GenOptions{DurationSec: 60, SampleEvery: 1},
		TuneWindow:     focus.GenOptions{DurationSec: 30, SampleEvery: 1},
		AllowNoStreams: true,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	if sys.PendingImport(stream) {
		t.Fatal("Start left the pending-import marker in place")
	}
	// The orphaned import was purged outright: this shard does not serve
	// the stream it never finished receiving.
	if sys.Session(stream) != nil {
		t.Fatal("cold start served the unactivated import")
	}
}
