package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// This file publishes the data directory's MANIFEST.json: a small, human-
// and tool-readable summary of what durable state the directory holds, so
// an operator staring at a recovered disk (or a runbook step, see
// OPERATIONS.md §10) can tell what a cold start will restore without
// decoding the store. The manifest is advisory — restore correctness comes
// from the store's own commit protocol — but it is published with the same
// discipline (temp file + fsync + atomic rename) so it is never observed
// half-written, even across a crash mid-publish.

// ManifestName is the file name published inside the data directory.
const ManifestName = "MANIFEST.json"

// Manifest is the MANIFEST.json schema.
type Manifest struct {
	// Version is the manifest schema version (currently 1).
	Version int `json:"version"`
	// Store is the store file's name within the data directory.
	Store string `json:"store"`
	// WindowSec is the configured ingest horizon.
	WindowSec float64 `json:"window_sec"`
	// UpdatedUnix is when this manifest was published (unix seconds).
	UpdatedUnix int64 `json:"updated_unix"`
	// Streams summarizes each stream's last durable checkpoint.
	Streams map[string]ManifestStream `json:"streams"`
}

// ManifestStream is one stream's entry.
type ManifestStream struct {
	// Watermark is the stream's watermark as of the last checkpoint: the
	// horizon a cold start restores to before replaying the tail.
	Watermark float64 `json:"watermark"`
	// Done marks a completed window (cold start restores the finished
	// index; no replay).
	Done bool `json:"done"`
	// Restored marks a stream this process itself cold-started from a
	// checkpoint rather than ingesting from scratch.
	Restored bool `json:"restored,omitempty"`
}

// publishManifest atomically replaces dir/MANIFEST.json. The temp file is
// fsynced before the rename and the directory after it, so the rename is
// durable: after a crash the directory holds either the old manifest or
// the new one, never a torn mix.
func publishManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("serve: publishing manifest: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: publishing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: publishing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: publishing manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("serve: publishing manifest: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// ReadManifest loads dir/MANIFEST.json. Operators and harnesses use it;
// the server itself only writes.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("serve: decoding manifest: %w", err)
	}
	return &m, nil
}

// publishManifestLocked snapshots every stream's checkpoint standing and
// publishes it. Serialized because several ingester goroutines checkpoint
// independently; the manifest is whole-directory state.
func (s *Server) publishManifestNow() {
	if s.cfg.DataDir == "" {
		return
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	m := Manifest{
		Version:     1,
		Store:       s.cfg.StoreName,
		WindowSec:   s.cfg.Window.DurationSec,
		UpdatedUnix: time.Now().Unix(),
		Streams:     make(map[string]ManifestStream),
	}
	for _, sess := range s.sys.Sessions() {
		name := sess.Name()
		s.checkpointMu.Lock()
		entry := s.checkpointed[name]
		s.checkpointMu.Unlock()
		m.Streams[name] = entry
	}
	if err := publishManifest(s.cfg.DataDir, m); err != nil {
		s.checkpointErrs.Add(1)
	}
}
