package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"focus"
	"focus/internal/serve"
)

func postPlan(t testing.TB, s *testService, req serve.PlanRequest) (*serve.PlanResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.http.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /plan %+v: status %d", req, resp.StatusCode)
	}
	var pr serve.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return &pr, resp
}

// TestPlanServedEqualsDirect: the served compound result must be identical
// to a direct library execution pinned to the served watermark vector.
func TestPlanServedEqualsDirect(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	s.advanceAll(t, 40)

	pr, _ := postPlan(t, s, serve.PlanRequest{Expr: "car & person & !bus", TopK: 10})
	if pr.Cached {
		t.Fatal("first plan response claims cached")
	}
	if pr.Expr != "(car&person&!bus)" {
		t.Fatalf("canonical expr %q", pr.Expr)
	}
	direct, err := s.sys.PlanQuery("car & person & !bus", focus.PlanOptions{
		TopK:         10,
		AtWatermarks: pr.Watermarks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Items) != len(direct.Items) {
		t.Fatalf("served %d items, direct %d", len(pr.Items), len(direct.Items))
	}
	for i, it := range pr.Items {
		d := direct.Items[i]
		if it.Stream != d.Stream || it.Frame != int64(d.Frame) || it.Score != d.Score ||
			it.Segment != int64(d.Segment) || it.TimeSec != d.TimeSec {
			t.Fatalf("item %d: served %+v, direct %+v", i, it, d)
		}
	}

	// Leaf options (window, Kx) shape execution and are echoed back so a
	// verifier can replay them.
	windowed, _ := postPlan(t, s, serve.PlanRequest{Expr: "car & !bus", TopK: 5, Start: 10, End: 30, Kx: 2})
	if windowed.Start != 10 || windowed.End != 30 || windowed.Kx != 2 {
		t.Fatalf("leaf options not echoed: %+v", windowed)
	}
	directWindowed, err := s.sys.PlanQuery("car & !bus", focus.PlanOptions{
		TopK:         5,
		Leaf:         focus.QueryOptions{StartSec: 10, EndSec: 30, Kx: 2},
		AtWatermarks: windowed.Watermarks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed.Items) != len(directWindowed.Items) {
		t.Fatalf("windowed: served %d items, direct %d", len(windowed.Items), len(directWindowed.Items))
	}
	for i, it := range windowed.Items {
		d := directWindowed.Items[i]
		if it.Stream != d.Stream || it.Frame != int64(d.Frame) || it.Score != d.Score {
			t.Fatalf("windowed item %d: served %+v, direct %+v", i, it, d)
		}
		if it.TimeSec < 10 || it.TimeSec > 30 {
			t.Fatalf("windowed item %d outside [10,30]: %+v", i, it)
		}
	}
}

// TestPlanCacheHit: the same plan at the same vector is served from the
// cache with zero new GT-CNN work; advancing a watermark changes the key.
func TestPlanCacheHit(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c")
	s.advanceAll(t, 30)

	first, resp := postPlan(t, s, serve.PlanRequest{Expr: "car & !bus"})
	if h := resp.Header.Get("X-Focus-Cache"); h != "miss" {
		t.Fatalf("first response cache header %q", h)
	}
	gpuBefore := s.sys.GPUMeter()
	// Whitespace and request-text differences must still hit: the cache
	// keys on the canonical form.
	second, resp := postPlan(t, s, serve.PlanRequest{Expr: "  car   &  !bus "})
	if h := resp.Header.Get("X-Focus-Cache"); h != "hit" {
		t.Fatalf("second response cache header %q", h)
	}
	if !second.Cached {
		t.Error("second response not marked cached")
	}
	if got := s.sys.GPUMeter(); got.QueryMS != gpuBefore.QueryMS {
		t.Errorf("cache hit consumed %.1f GPU ms", got.QueryMS-gpuBefore.QueryMS)
	}
	if len(second.Items) != len(first.Items) {
		t.Fatalf("cached %d items, original %d", len(second.Items), len(first.Items))
	}
	for i := range second.Items {
		if second.Items[i] != first.Items[i] {
			t.Fatalf("cached item %d differs: %+v vs %+v", i, second.Items[i], first.Items[i])
		}
	}

	s.advanceAll(t, 45)
	third, resp := postPlan(t, s, serve.PlanRequest{Expr: "car & !bus"})
	if h := resp.Header.Get("X-Focus-Cache"); h != "miss" {
		t.Fatalf("post-advance response cache header %q: watermark advance must change the key", h)
	}
	if third.Cached {
		t.Error("post-advance response marked cached")
	}
}

// TestPlanPaging: limit/offset slice the cached execution — pages
// concatenate to the full ranking and share one execution.
func TestPlanPaging(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c")
	s.advanceAll(t, 30)

	full, _ := postPlan(t, s, serve.PlanRequest{Expr: "car & person", TopK: 9})
	if full.TotalItems != len(full.Items) {
		t.Fatalf("total %d != %d items", full.TotalItems, len(full.Items))
	}
	if full.TotalItems == 0 {
		t.Fatal("plan matched nothing; pick a denser window")
	}
	gpuBefore := s.sys.GPUMeter()
	var paged []serve.PlanItem
	for off := 0; off < full.TotalItems; off += 4 {
		page, _ := postPlan(t, s, serve.PlanRequest{Expr: "car & person", TopK: 9, Limit: 4, Offset: off})
		if page.TotalItems != full.TotalItems {
			t.Fatalf("page at offset %d reports %d total, want %d", off, page.TotalItems, full.TotalItems)
		}
		paged = append(paged, page.Items...)
	}
	if got := s.sys.GPUMeter(); got.QueryMS != gpuBefore.QueryMS {
		t.Errorf("HTTP paging consumed %.1f GPU ms; pages must share the cached execution", got.QueryMS-gpuBefore.QueryMS)
	}
	if len(paged) != len(full.Items) {
		t.Fatalf("pages sum to %d items, full %d", len(paged), len(full.Items))
	}
	for i := range paged {
		if paged[i] != full.Items[i] {
			t.Fatalf("paged item %d differs: %+v vs %+v", i, paged[i], full.Items[i])
		}
	}
	// Past-the-end offset is an empty page, not an error.
	empty, _ := postPlan(t, s, serve.PlanRequest{Expr: "car & person", TopK: 9, Offset: full.TotalItems + 5})
	if len(empty.Items) != 0 {
		t.Fatalf("past-the-end page returned %d items", len(empty.Items))
	}
}

// TestPlanPagingPinnedAcrossIngest: passing the echoed watermark vector
// back via at_watermarks keeps offset pages coherent while background
// ingest advances between page requests — every page reads the same
// pinned execution instead of re-snapshotting a moving horizon.
func TestPlanPagingPinnedAcrossIngest(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c")
	s.advanceAll(t, 30)

	const expr = "car & person"
	page1, _ := postPlan(t, s, serve.PlanRequest{Expr: expr, TopK: 8, Limit: 4})
	if page1.TotalItems == 0 {
		t.Fatal("plan matched nothing; pick a denser window")
	}

	// Ingest advances between the client's page requests.
	s.advanceAll(t, 45)

	pinned, resp := postPlan(t, s, serve.PlanRequest{
		Expr: expr, TopK: 8, Limit: 4, Offset: 4, AtWatermarks: page1.Watermarks,
	})
	if h := resp.Header.Get("X-Focus-Cache"); h != "hit" {
		t.Errorf("pinned page after ingest advance: cache header %q, want hit (same execution)", h)
	}
	if pinned.TotalItems != page1.TotalItems {
		t.Fatalf("pinned page reports %d total, page 1 saw %d", pinned.TotalItems, page1.TotalItems)
	}
	for name, wm := range page1.Watermarks {
		if pinned.Watermarks[name] != wm {
			t.Fatalf("pinned page executed at %s@%g, want %g", name, pinned.Watermarks[name], wm)
		}
	}
	// The two pages concatenate to the pinned one-shot ranking.
	oneShot, _ := postPlan(t, s, serve.PlanRequest{Expr: expr, TopK: 8, AtWatermarks: page1.Watermarks})
	both := append(append([]serve.PlanItem{}, page1.Items...), pinned.Items...)
	if len(both) != len(oneShot.Items) {
		t.Fatalf("pages sum to %d items, pinned one-shot %d", len(both), len(oneShot.Items))
	}
	for i := range both {
		if both[i] != oneShot.Items[i] {
			t.Fatalf("pinned paging item %d differs: %+v vs %+v", i, both[i], oneShot.Items[i])
		}
	}
	// An unpinned request after the advance snapshots the new horizon.
	fresh, _ := postPlan(t, s, serve.PlanRequest{Expr: expr, TopK: 8})
	for name, wm := range fresh.Watermarks {
		if wm <= page1.Watermarks[name] {
			t.Fatalf("unpinned request still at %s@%g", name, wm)
		}
	}
}

// TestPlanBadRequests: malformed plans are 4xx before consuming a slot.
func TestPlanBadRequests(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c")

	post := func(body string) int {
		resp, err := http.Post(s.http.URL+"/plan", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		body string
		want int
	}{
		{`{}`, http.StatusBadRequest},                                   // missing expr
		{`{"expr": "car &"}`, http.StatusBadRequest},                    // syntax error
		{`{"expr": "!bus"}`, http.StatusBadRequest},                     // unanchored
		{`{"expr": "car & warp_drive"}`, http.StatusBadRequest},         // unknown class
		{`{"expr": "car", "streams": ["nope"]}`, http.StatusBadRequest}, // unknown stream
		{`{"expr": "car", "top_k": -1}`, http.StatusBadRequest},         // negative parameter
		{`not json`, http.StatusBadRequest},                             // body not JSON
	}
	for _, tc := range cases {
		if got := post(tc.body); got != tc.want {
			t.Errorf("POST /plan %s: status %d, want %d", tc.body, got, tc.want)
		}
	}
	resp, err := http.Get(s.http.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /plan: status %d, want 405", resp.StatusCode)
	}
}
