package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"focus/api"
	"focus/internal/plan"
)

// This file is the deprecated pre-v1 surface: GET /query and POST /plan,
// kept as thin shims that translate into the v1 execution core
// (executeV1) and back. The wire format — bodies, status codes, the
// X-Focus-Cache and X-Focus-Draining markers, every error string — is
// pinned byte for byte by the goldens under testdata/legacy: deployed
// pre-v1 clients must keep working unchanged. Each shim response
// additionally carries a "Deprecation: true" header, and shim traffic is
// counted in the stats legacy_requests counter so operators can track
// client migration to /v1/query.

// ErrorResponse is the payload of every non-2xx legacy response (the v1
// surface uses the structured api.Envelope instead).
type ErrorResponse struct {
	// Error is the bare human-readable message.
	Error string `json:"error"`
}

// StreamQueryResult is one stream's share of a legacy /query response —
// the same wire shape as api.StreamResult.
type StreamQueryResult = api.StreamResult

// QueryResponse is the legacy GET /query payload. Cached is true when the
// response was served from the result cache (its cost counters then
// describe the original execution; no new GT-CNN work happened). The
// executed leaf options are echoed back — with the per-stream watermarks —
// so a verifier can replay the exact execution as a direct library call.
type QueryResponse struct {
	Class       string                        `json:"class"`
	Streams     map[string]*StreamQueryResult `json:"streams"`
	TotalFrames int                           `json:"total_frames"`
	Kx          int                           `json:"kx,omitempty"`
	Start       float64                       `json:"start,omitempty"`
	End         float64                       `json:"end,omitempty"`
	MaxClusters int                           `json:"max_clusters,omitempty"`
	LatencyMS   float64                       `json:"latency_ms"`
	GPUTimeMS   float64                       `json:"gpu_time_ms"`
	Cached      bool                          `json:"cached"`
}

// PlanRequest is the legacy POST /plan body: a compound boolean predicate
// over class names, executed across the selected streams at the watermark
// vector snapshotted at admission (or pinned via AtWatermarks). The v1
// equivalent is api.QueryRequest, where Limit/Offset paging is replaced by
// the opaque watermark-stable cursor.
type PlanRequest struct {
	// Expr is the predicate, e.g. "car & person & !bus".
	Expr string `json:"expr"`
	// Streams restricts the plan; empty = all registered streams.
	Streams []string `json:"streams,omitempty"`
	// TopK caps the ranked result; 0 returns every matching frame.
	TopK int `json:"top_k,omitempty"`
	// Kx / Start / End / MaxClusters apply to every predicate leaf, with
	// the same semantics as the /query parameters.
	Kx          int     `json:"kx,omitempty"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	MaxClusters int     `json:"max_clusters,omitempty"`
	// Limit/Offset page the ranked items of the (cached) execution.
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
	// AtWatermarks pins the execution to an explicit per-stream watermark
	// vector instead of the one snapshotted at admission.
	AtWatermarks map[string]float64 `json:"at_watermarks,omitempty"`
}

// PlanItem is one ranked result of a legacy /plan response — the same wire
// shape as api.Item.
type PlanItem = api.Item

// PlanResponse is the legacy POST /plan payload. TotalItems counts the
// full execution's items; Items carries the Limit/Offset page of them
// (everything when no Limit was given).
type PlanResponse struct {
	// Expr is the canonical form of the executed predicate.
	Expr         string             `json:"expr"`
	Items        []PlanItem         `json:"items"`
	TotalItems   int                `json:"total_items"`
	Watermarks   map[string]float64 `json:"watermarks"`
	TopK         int                `json:"top_k,omitempty"`
	Kx           int                `json:"kx,omitempty"`
	Start        float64            `json:"start,omitempty"`
	End          float64            `json:"end,omitempty"`
	MaxClusters  int                `json:"max_clusters,omitempty"`
	GTInferences int                `json:"gt_inferences"`
	GPUTimeMS    float64            `json:"gpu_time_ms"`
	LatencyMS    float64            `json:"latency_ms"`
	Cached       bool               `json:"cached"`
}

// LegacyQueryArgs are the parsed/normalized legacy GET /query parameters.
// Exported because the router's legacy shim must parse the identical
// surface with the identical error strings.
type LegacyQueryArgs struct {
	// Class is the single queried class (the one-leaf plan).
	Class string
	// Streams is the normalized requested stream set (nil = all).
	Streams []string
	// Kx, MaxClusters, Start and End are the leaf options.
	Kx          int
	MaxClusters int
	Start, End  float64
	// At carries explicit watermark pins from the `at` parameter.
	At api.WatermarkVector
}

// Request converts the legacy arguments into the equivalent v1 request —
// the translation the shims are built on.
func (p *LegacyQueryArgs) Request() *api.QueryRequest {
	return &api.QueryRequest{
		Expr:        p.Class,
		Streams:     p.Streams,
		Kx:          p.Kx,
		Start:       p.Start,
		End:         p.End,
		MaxClusters: p.MaxClusters,
		At:          p.At,
	}
}

// ParseLegacyQueryArgs parses the legacy GET /query parameter surface.
// Error strings are part of the pinned legacy wire format.
func ParseLegacyQueryArgs(r *http.Request) (*LegacyQueryArgs, error) {
	q := r.URL.Query()
	p := &LegacyQueryArgs{Class: q.Get("class")}
	if p.Class == "" {
		return nil, fmt.Errorf("missing required parameter: class")
	}
	if v := q.Get("streams"); v != "" {
		p.Streams = api.NormalizeStreams(strings.Split(v, ","))
	}
	var err error
	intParam := func(name string) int {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		n, e := strconv.Atoi(v)
		if e != nil || n < 0 {
			err = fmt.Errorf("bad %s: %q", name, v)
		}
		return n
	}
	floatParam := func(name string) float64 {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		f, e := strconv.ParseFloat(v, 64)
		if e != nil || f < 0 {
			err = fmt.Errorf("bad %s: %q", name, v)
		}
		return f
	}
	p.Kx = intParam("kx")
	p.MaxClusters = intParam("max_clusters")
	p.Start = floatParam("start")
	p.End = floatParam("end")
	if err != nil {
		return nil, err
	}
	if v := q.Get("at"); v != "" {
		if p.At, err = api.ParseWatermarkVector(v); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// rejectDraining writes the legacy draining 503 (marker header and all)
// and reports whether the request was rejected.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set(DrainingHeader, "1")
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
	return true
}

// writeLegacyError translates a structured v1 error back into the legacy
// wire format: the bare message string at the code's status, with the
// draining marker header where pre-v1 clients sniff it (value "1" for this
// server's own drain; the router sets the shard name when translating).
func (s *Server) writeLegacyError(w http.ResponseWriter, e *api.Error) {
	s.countV1Error(e)
	if e.Code == api.CodeDraining {
		v := e.Shard
		if v == "" {
			v = "1"
		}
		w.Header().Set(DrainingHeader, v)
	}
	writeJSON(w, e.HTTPStatus(), ErrorResponse{Error: e.Message})
}

// handleLegacyQuery is the deprecated GET /query shim: parse the legacy
// parameter surface, run the frames-form v1 core, translate back.
func (s *Server) handleLegacyQuery(w http.ResponseWriter, r *http.Request) {
	s.legacyReqs.Add(1)
	w.Header().Set(api.DeprecationHeader, "true")
	if s.rejectDraining(w) { // before the ready check: mid-boot drains stay marked
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "not ready"})
		return
	}
	p, err := ParseLegacyQueryArgs(r)
	if err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	// The legacy surface reported unknown classes with the library's own
	// error text; resolve before compiling so the message survives.
	if _, err := s.sys.ClassID(p.Class); err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	compiled, err := s.sys.CompilePlanExpr(&plan.Leaf{Class: p.Class})
	if err != nil {
		s.writeLegacyError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	resp, aerr := s.executeV1(&v1Exec{
		compiled:    compiled,
		streams:     p.Streams,
		pins:        p.At,
		kx:          p.Kx,
		start:       p.Start,
		end:         p.End,
		maxClusters: p.MaxClusters,
	})
	if aerr != nil {
		s.writeLegacyError(w, aerr)
		return
	}
	w.Header().Set("X-Focus-Cache", cacheHeaderValue(resp.Cached))
	writeJSON(w, http.StatusOK, LegacyQueryPayload(p.Class, resp))
}

// handleLegacyPlan is the deprecated POST /plan shim.
func (s *Server) handleLegacyPlan(w http.ResponseWriter, r *http.Request) {
	s.legacyReqs.Add(1)
	w.Header().Set(api.DeprecationHeader, "true")
	if s.rejectDraining(w) { // before the ready check: mid-boot drains stay marked
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "not ready"})
		return
	}
	if r.Method != http.MethodPost {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST a JSON body to /plan"})
		return
	}
	var req PlanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad /plan body: " + err.Error()})
		return
	}
	if req.Expr == "" {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing required field: expr"})
		return
	}
	if req.TopK < 0 || req.Kx < 0 || req.MaxClusters < 0 || req.Limit < 0 || req.Offset < 0 ||
		req.Start < 0 || req.End < 0 {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "negative plan parameter"})
		return
	}
	// Compile before admission: a syntax error or unknown class must not
	// consume a query slot.
	compiled, err := s.sys.CompilePlan(req.Expr)
	if err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	resp, aerr := s.executeV1(&v1Exec{
		compiled:    compiled,
		streams:     api.NormalizeStreams(req.Streams),
		pins:        req.AtWatermarks,
		topK:        req.TopK,
		kx:          req.Kx,
		start:       req.Start,
		end:         req.End,
		maxClusters: req.MaxClusters,
		limit:       req.Limit,
		offset:      req.Offset,
		ranked:      true,
	})
	if aerr != nil {
		s.writeLegacyError(w, aerr)
		return
	}
	w.Header().Set("X-Focus-Cache", cacheHeaderValue(resp.Cached))
	writeJSON(w, http.StatusOK, LegacyPlanPayload(resp))
}

// LegacyQueryPayload renders a frames-form v1 response in the legacy GET
// /query wire shape. Exported because the router's legacy shim performs
// the same translation on merged responses.
func LegacyQueryPayload(class string, r *api.QueryResponse) *QueryResponse {
	return &QueryResponse{
		Class:       class,
		Streams:     r.Streams,
		TotalFrames: r.TotalFrames,
		Kx:          r.Kx,
		Start:       r.Start,
		End:         r.End,
		MaxClusters: r.MaxClusters,
		LatencyMS:   r.LatencyMS,
		GPUTimeMS:   r.GPUTimeMS,
		Cached:      r.Cached,
	}
}

// LegacyPlanPayload renders a ranked-form v1 response in the legacy POST
// /plan wire shape. Exported for the router's legacy shim.
func LegacyPlanPayload(r *api.QueryResponse) *PlanResponse {
	items := r.Items
	if items == nil {
		// The legacy contract serializes an empty page as [], not null —
		// the "request pages until items is empty" loop must end cleanly.
		items = []PlanItem{}
	}
	return &PlanResponse{
		Expr:         r.Expr,
		Items:        items,
		TotalItems:   r.TotalItems,
		Watermarks:   r.Watermarks,
		TopK:         r.TopK,
		Kx:           r.Kx,
		Start:        r.Start,
		End:          r.End,
		MaxClusters:  r.MaxClusters,
		GTInferences: r.GTInferences,
		GPUTimeMS:    r.GPUTimeMS,
		LatencyMS:    r.LatencyMS,
		Cached:       r.Cached,
	}
}
