package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

func v1Client(s *testService) *client.Client {
	return client.New(s.http.URL, client.WithRetries(0, 0))
}

// TestV1Forms pins the form decision: a bare one-leaf expr answers in the
// frames form through the single-class engine; TopK, Limit, a compound
// expr, or an explicit form override answer ranked.
func TestV1Forms(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	s.advanceAll(t, 30)
	cli := v1Client(s)
	ctx := context.Background()

	frames, err := cli.Query(ctx, &api.QueryRequest{Expr: "car"})
	if err != nil {
		t.Fatal(err)
	}
	if frames.Form != api.FormFrames || frames.Streams == nil || frames.Items != nil {
		t.Fatalf("bare one-leaf answered %q form: %+v", frames.Form, frames)
	}
	if frames.Expr != "car" {
		t.Fatalf("canonical echo %q", frames.Expr)
	}
	if err := loadgen.NewDirectVerifier(s.sys)(frames); err != nil {
		t.Fatalf("frames response diverges from direct: %v", err)
	}

	for name, req := range map[string]*api.QueryRequest{
		"compound":  {Expr: "car & person"},
		"topk":      {Expr: "car", TopK: 5},
		"limit":     {Expr: "car", Limit: 5},
		"form-flag": {Expr: "car", Form: api.FormRanked},
	} {
		resp, err := cli.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Form != api.FormRanked {
			t.Fatalf("%s answered %q form", name, resp.Form)
		}
	}

	// The ranked one-leaf form agrees with the frames form on the match
	// set: every ranked item's frame appears in the frames answer.
	ranked, err := cli.Query(ctx, &api.QueryRequest{Expr: "car", Form: api.FormRanked,
		At: frames.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if ranked.TotalItems != frames.TotalFrames {
		t.Fatalf("ranked one-leaf has %d items, frames form %d frames", ranked.TotalItems, frames.TotalFrames)
	}
	if err := loadgen.NewDirectPlanVerifier(s.sys)(ranked); err != nil {
		t.Fatalf("ranked response diverges from direct: %v", err)
	}
}

// TestV1CursorPagedEqualsOneShot is the serve-side paged-equals-one-shot
// pin over the opaque cursor: pages are watermark-stable by construction
// (the token freezes the vector), share one cached execution, and
// concatenate bit-identically to the one-shot answer — even when ingest
// advances between pages.
func TestV1CursorPagedEqualsOneShot(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	s.advanceAll(t, 30)
	cli := v1Client(s)
	ctx := context.Background()

	req := &api.QueryRequest{Expr: "car & person", TopK: 9}
	first, err := cli.Query(ctx, &api.QueryRequest{Expr: req.Expr, TopK: req.TopK, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalItems == 0 {
		t.Fatal("plan matched nothing; pick a denser window")
	}
	if first.Cursor == "" {
		t.Fatal("first page carries no continuation cursor")
	}

	// Ingest advances between the client's page fetches; the cursor must
	// keep every later page pinned to the original vector.
	s.advanceAll(t, 45)
	gpuBefore := s.sys.GPUMeter()

	items := append([]api.Item(nil), first.Items...)
	cursor := first.Cursor
	for cursor != "" {
		page, err := cli.Query(ctx, &api.QueryRequest{Cursor: cursor, Limit: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !page.Cached {
			t.Fatal("cursor page re-executed instead of reading the pinned execution")
		}
		if !reflect.DeepEqual(page.Watermarks, first.Watermarks) {
			t.Fatalf("cursor page executed at %v, pinned %v", page.Watermarks, first.Watermarks)
		}
		items = append(items, page.Items...)
		cursor = page.Cursor
	}
	if got := s.sys.GPUMeter(); got.QueryMS != gpuBefore.QueryMS {
		t.Errorf("cursor paging consumed %.1f GPU ms; pages must share the cached execution", got.QueryMS-gpuBefore.QueryMS)
	}

	oneShot, err := cli.Query(ctx, &api.QueryRequest{Expr: req.Expr, TopK: req.TopK, At: first.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, oneShot.Items) {
		t.Fatalf("cursor pages diverge from one-shot:\npaged: %+v\nfull:  %+v", items, oneShot.Items)
	}

	// CollectPages (the client-side convenience) reaches the same answer
	// and passes the direct verifier.
	assembled, err := cli.CollectPages(ctx, &api.QueryRequest{Expr: req.Expr, TopK: req.TopK, At: first.Watermarks}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(assembled.Items, oneShot.Items) {
		t.Fatal("CollectPages diverges from one-shot")
	}
	if err := loadgen.NewDirectPlanVerifier(s.sys)(assembled); err != nil {
		t.Fatalf("assembled paged read diverges from direct: %v", err)
	}
}

// TestV1ErrorCodes pins the machine-readable error taxonomy.
func TestV1ErrorCodes(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c")
	s.advanceAll(t, 20)
	cli := v1Client(s)
	ctx := context.Background()

	cases := []struct {
		name string
		req  *api.QueryRequest
		want api.Code
	}{
		{"missing expr", &api.QueryRequest{}, api.CodeBadRequest},
		{"negative", &api.QueryRequest{Expr: "car", TopK: -1}, api.CodeBadRequest},
		{"syntax", &api.QueryRequest{Expr: "car &"}, api.CodeBadExpr},
		{"unknown class", &api.QueryRequest{Expr: "warp_drive"}, api.CodeBadExpr},
		{"unanchored", &api.QueryRequest{Expr: "!bus"}, api.CodeBadExpr},
		{"unknown stream", &api.QueryRequest{Expr: "car", Streams: []string{"nope"}}, api.CodeUnknownStream},
		{"pin ahead", &api.QueryRequest{Expr: "car", At: api.WatermarkVector{"auburn_c": 999}}, api.CodePinAhead},
		{"pin outside", &api.QueryRequest{Expr: "car", Streams: []string{"auburn_c"}, At: api.WatermarkVector{"jacksonh": 5}}, api.CodeBadRequest},
		{"bad cursor", &api.QueryRequest{Cursor: "v1.garbage"}, api.CodeBadCursor},
		{"cursor plus fields", &api.QueryRequest{Cursor: "v1.x", Expr: "car"}, api.CodeBadCursor},
		{"bad form", &api.QueryRequest{Expr: "car", Form: "frames"}, api.CodeBadRequest},
	}
	for _, tc := range cases {
		_, err := cli.Query(ctx, tc.req)
		if !api.IsCode(err, tc.want) {
			t.Errorf("%s: got %v, want code %s", tc.name, err, tc.want)
		}
	}

	// Draining: structured code on v1, no header semantics needed.
	resp, err := http.Post(s.http.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := cli.Query(ctx, &api.QueryRequest{Expr: "car"}); !api.IsCode(err, api.CodeDraining) {
		t.Fatalf("draining query: %v, want code draining", err)
	}
}

// TestV1AndLegacyShareCache: the shim translates into the v1 core, so the
// same pure function reached over either surface shares one cache entry —
// and the legacy_requests counter tracks only shim traffic.
func TestV1AndLegacyShareCache(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c")
	s.advanceAll(t, 20)
	cli := v1Client(s)

	v1resp, err := cli.Query(context.Background(), &api.QueryRequest{Expr: "car"})
	if err != nil {
		t.Fatal(err)
	}
	if v1resp.Cached {
		t.Fatal("first v1 query claims cached")
	}
	legacy, resp := s.getQuery(t, "class=car")
	if !legacy.Cached {
		t.Fatal("legacy repeat of the v1 query missed the cache — surfaces must share entries")
	}
	if resp.Header.Get(api.DeprecationHeader) != "true" {
		t.Error("legacy response missing the Deprecation header")
	}
	if legacy.TotalFrames != v1resp.TotalFrames {
		t.Fatalf("legacy served %d frames, v1 %d", legacy.TotalFrames, v1resp.TotalFrames)
	}

	stats := s.srv.Snapshot()
	if stats.LegacyRequests != 1 {
		t.Fatalf("legacy_requests = %d, want 1 (v1 traffic must not count)", stats.LegacyRequests)
	}
	if stats.Queries != 2 || stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// ---- v1 golden wire format ----

// v1CaptureSequence pins the v1 JSON encodings — request handling, both
// response forms, the error envelope, and the cursor token — byte for
// byte. Unlike the legacy goldens (which freeze a pre-redesign capture),
// these are the contract of record for /v1: regenerate deliberately with
// -update-golden when the contract version changes.
var v1CaptureSequence = []struct {
	name string
	body string
}{
	{"frames", `{"expr":"car"}`},
	{"frames_windowed", `{"expr":"car","streams":["auburn_c"],"kx":2,"start":5,"end":25,"max_clusters":40}`},
	{"ranked", `{"expr":"car & person","top_k":5}`},
	{"ranked_paged", `{"expr":"car & person","top_k":5,"limit":2,"at":{"auburn_c":30,"jacksonh":30}}`},
	{"error_bad_expr", `{"expr":"!bus"}`},
	{"error_unknown_stream", `{"expr":"car","streams":["nope"]}`},
	{"error_pin_ahead", `{"expr":"car","at":{"auburn_c":999,"jacksonh":30}}`},
	{"error_bad_cursor", `{"cursor":"v1.garbage"}`},
}

func TestV1WireGolden(t *testing.T) {
	s := bootTestService(t, focus.Config{Seed: 1}, serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	s.advanceAll(t, 30)
	for _, tc := range v1CaptureSequence {
		resp, err := http.Post(s.http.URL+api.PathQuery, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		fmt.Fprintf(&b, "HTTP %d\n\n", resp.StatusCode)
		b.Write(body)
		checkV1Golden(t, tc.name, b.Bytes())
	}
}

func checkV1Golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "v1", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden to capture): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: v1 wire bytes changed\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestCursorTokenGolden pins the cursor token encoding: a fixed cursor
// state must always yield the same opaque string (resumability across
// server restarts and mixed fleets depends on it).
func TestCursorTokenGolden(t *testing.T) {
	tok := (&api.Cursor{
		Expr:    "(car&person)",
		Streams: []string{"auburn_c", "jacksonh"},
		TopK:    5,
		At:      api.WatermarkVector{"auburn_c": 30, "jacksonh": 30},
		Offset:  2,
	}).Encode()
	checkV1Golden(t, "cursor_token", []byte(tok))
}
