package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"

	"focus"
	"focus/api"
	"focus/internal/serve"
)

// subscription is a test-side live SSE stream off POST /v1/subscribe.
type subscription struct {
	resp  *http.Response
	rd    *api.SSEReader
	hello *api.SubscribeHello
}

func openSubscription(t testing.TB, s *testService, req *api.SubscribeRequest) *subscription {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.http.URL+api.PathSubscribe, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST %s: status %d: %s", api.PathSubscribe, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscription Content-Type = %q", ct)
	}
	t.Cleanup(func() { resp.Body.Close() })
	rd := api.NewSSEReader(resp.Body)
	ev, err := rd.Next()
	if err != nil {
		t.Fatalf("reading hello: %v", err)
	}
	if ev.Type != api.EventHello {
		t.Fatalf("first frame is %q, want hello", ev.Type)
	}
	return &subscription{resp: resp, rd: rd, hello: ev.Hello}
}

func (sub *subscription) next(t testing.TB) *api.SubscribeEvent {
	t.Helper()
	ev, err := sub.rd.Next()
	if err != nil {
		t.Fatalf("reading subscription frame: %v", err)
	}
	return ev
}

// subscribeError posts a subscription request expected to fail before the
// stream starts and returns the typed error.
func subscribeError(t testing.TB, s *testService, req *api.SubscribeRequest) *api.Error {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.http.URL+api.PathSubscribe, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("expected a typed error, got a stream")
	}
	raw, _ := io.ReadAll(resp.Body)
	return api.DecodeError(resp.StatusCode, raw)
}

// reassembly applies a subscription's deltas in order, enforcing the
// contiguity contract (each From continues the previous To).
type reassembly struct {
	form   string // api.FormRanked or api.FormTracks
	items  []api.Item
	tracks []api.TrackItem
	last   api.WatermarkVector
}

func (a *reassembly) apply(t testing.TB, d *api.Delta) {
	t.Helper()
	if !api.VectorsEqual(d.From, a.last) {
		t.Fatalf("delta From %v does not continue last To %v", d.From, a.last)
	}
	var err error
	if a.form == api.FormTracks {
		a.tracks, err = api.ApplyDeltaTracks(a.tracks, d)
	} else {
		a.items, err = api.ApplyDeltaItems(a.items, d)
	}
	if err != nil {
		t.Fatalf("applying delta (%v → %v): %v", d.From, d.To, err)
	}
	a.last = d.To
}

// TestSubscribeDeltasEqualOneShot is the tentpole invariant on the real
// engine: the concatenation of a subscription's deltas from genesis
// reconstructs the one-shot /v1/query answer pinned at the last delivered
// vector, bit-identically, in both forms, with deterministic ingest.
func TestSubscribeDeltasEqualOneShot(t *testing.T) {
	cases := []struct {
		name string
		expr string
		form string
	}{
		{"ranked", "car & person", api.FormRanked},
		{"tracks", "car & dur(1)", api.FormTracks},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := bootTestService(t, focus.Config{},
				serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
			sub := openSubscription(t, s, &api.SubscribeRequest{Expr: tc.expr})
			if sub.hello.Form != tc.form {
				t.Fatalf("hello form %q, want %q", sub.hello.Form, tc.form)
			}
			if !reflect.DeepEqual(sub.hello.Streams, []string{"auburn_c", "jacksonh"}) {
				t.Fatalf("hello streams %v", sub.hello.Streams)
			}
			asm := &reassembly{form: tc.form, last: api.WatermarkVector{"auburn_c": 0, "jacksonh": 0}}
			// The stream opens with the genesis catch-up delta — empty
			// here, since nothing has been ingested yet.
			opening := sub.next(t)
			if opening.Type != api.EventDelta || !api.VectorsEqual(opening.Delta.From, opening.Delta.To) {
				t.Fatalf("expected an empty opening catch-up, got %+v", opening)
			}
			asm.apply(t, opening.Delta)
			for to := 5.0; to <= 60; to += 5 {
				s.advanceAll(t, to)
				s.srv.PumpSubscriptions()
				ev := sub.next(t)
				if ev.Type != api.EventDelta {
					t.Fatalf("expected delta at %g, got %q", to, ev.Type)
				}
				asm.apply(t, ev.Delta)
			}
			// The 60s window is exhausted: the pump completed the registry.
			bye := sub.next(t)
			if bye.Type != api.EventBye || bye.Reason != api.ReasonComplete {
				t.Fatalf("terminal = %+v, want complete bye", bye)
			}
			if _, err := sub.rd.Next(); err != io.EOF {
				t.Fatalf("stream after bye: %v, want EOF", err)
			}
			oneShot, err := v1Client(s).Query(context.Background(),
				&api.QueryRequest{Expr: tc.expr, At: asm.last})
			if err != nil {
				t.Fatal(err)
			}
			if tc.form == api.FormTracks {
				if len(asm.tracks) == 0 {
					t.Fatal("subscription reassembled no tracks; pick a denser window")
				}
				if !reflect.DeepEqual(asm.tracks, oneShot.Tracks) {
					t.Fatalf("reassembled tracks != one-shot at %v:\ngot  %+v\nwant %+v",
						asm.last, asm.tracks, oneShot.Tracks)
				}
			} else {
				if len(asm.items) == 0 {
					t.Fatal("subscription reassembled no items; pick a denser window")
				}
				if !reflect.DeepEqual(asm.items, oneShot.Items) {
					t.Fatalf("reassembled items != one-shot at %v:\ngot  %+v\nwant %+v",
						asm.last, asm.items, oneShot.Items)
				}
			}
		})
	}
}

// TestSubscribeDeltasEqualOneShotLive races real background ingest (run
// under -race): both forms subscribe while the ingesters advance
// watermarks on their own clock, stream until the window completes, and
// every reassembly must equal the one-shot answer at its final vector.
func TestSubscribeDeltasEqualOneShotLive(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{
		Window:         focus.GenOptions{DurationSec: 30, SampleEvery: 1},
		TuneWindow:     focus.GenOptions{DurationSec: 15, SampleEvery: 1},
		IngestInterval: 2 * time.Millisecond,
	}, "auburn_c", "jacksonh")
	for _, tc := range []struct {
		name string
		expr string
	}{
		{"ranked", "car & person"},
		{"tracks", "car & dur(1)"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sub := openSubscription(t, s, &api.SubscribeRequest{Expr: tc.expr})
			asm := &reassembly{form: sub.hello.Form, last: api.WatermarkVector{"auburn_c": 0, "jacksonh": 0}}
			sawBye := false
			for {
				ev, err := sub.rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				switch ev.Type {
				case api.EventDelta:
					asm.apply(t, ev.Delta)
				case api.EventBye:
					if ev.Reason != api.ReasonComplete {
						t.Fatalf("bye reason %q, want complete", ev.Reason)
					}
					sawBye = true
				default:
					t.Fatalf("unexpected event %q", ev.Type)
				}
			}
			if !sawBye {
				t.Fatal("stream ended without a terminal bye")
			}
			oneShot, err := v1Client(s).Query(context.Background(),
				&api.QueryRequest{Expr: tc.expr, At: asm.last})
			if err != nil {
				t.Fatal(err)
			}
			if oneShot.Form == api.FormTracks {
				if !reflect.DeepEqual(asm.tracks, oneShot.Tracks) {
					t.Fatalf("reassembled tracks != one-shot at %v", asm.last)
				}
			} else {
				if !reflect.DeepEqual(asm.items, oneShot.Items) {
					t.Fatalf("reassembled items != one-shot at %v", asm.last)
				}
			}
		})
	}
}

// TestSubscribeCoalescingSharesGPU is the cost-sharing acceptance proof:
// two identical servers run the identical ingest schedule, one with a
// single subscriber and one with five on the same plan — and their query
// GPU-ms meters end exactly equal, because the registry coalesces the
// five onto one incremental evaluation per advance.
func TestSubscribeCoalescingSharesGPU(t *testing.T) {
	boot := func() *testService {
		return bootTestService(t, focus.Config{},
			serve.Config{NoBackgroundIngest: true}, "auburn_c")
	}
	run := func(s *testService, nSubs int) (gpuMS float64, evals int64) {
		subs := make([]*subscription, nSubs)
		for i := range subs {
			subs[i] = openSubscription(t, s, &api.SubscribeRequest{Expr: "car & person"})
		}
		for to := 5.0; to <= 30; to += 5 {
			s.advanceAll(t, to)
			s.srv.PumpSubscriptions()
			first := subs[0].next(t)
			if first.Type != api.EventDelta {
				t.Fatalf("expected delta, got %q", first.Type)
			}
			for _, sub := range subs[1:] {
				if ev := sub.next(t); !reflect.DeepEqual(ev, first) {
					t.Fatalf("subscribers diverged:\n%+v\n%+v", ev, first)
				}
			}
		}
		return s.sys.GPUMeter().QueryMS, s.srv.SubscriptionStats().Evals
	}
	gpuOne, evalsOne := run(boot(), 1)
	gpuFive, evalsFive := run(boot(), 5)
	if gpuFive != gpuOne {
		t.Fatalf("5 subscribers cost %.3f query GPU-ms, 1 subscriber cost %.3f — coalescing broken", gpuFive, gpuOne)
	}
	if evalsFive != evalsOne {
		t.Fatalf("5 subscribers ran %d evals, 1 subscriber ran %d", evalsFive, evalsOne)
	}
	if evalsOne == 0 || gpuOne == 0 {
		t.Fatalf("schedule did no measurable work (evals=%d, gpu=%.3f)", evalsOne, gpuOne)
	}
}

// TestSubscribeSharesResultCache pins that subscription evaluations land
// in the same result cache one-shot queries read: after an advance is
// evaluated for a subscription, the identical one-shot query is a hit.
func TestSubscribeSharesResultCache(t *testing.T) {
	s := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c")
	sub := openSubscription(t, s, &api.SubscribeRequest{Expr: "car & person"})
	s.advanceAll(t, 10)
	s.srv.PumpSubscriptions()
	if ev := sub.next(t); ev.Type != api.EventDelta {
		t.Fatalf("expected delta, got %q", ev.Type)
	}
	resp, err := v1Client(s).Query(context.Background(), &api.QueryRequest{Expr: "car & person"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("one-shot query after a subscription evaluation missed the result cache")
	}
}

// TestSubscribeDrain pins the lifecycle contract: draining closes live
// streams with a typed terminal bye and refuses new subscriptions with
// the structured draining error.
func TestSubscribeDrain(t *testing.T) {
	s := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c")
	sub := openSubscription(t, s, &api.SubscribeRequest{Expr: "car & person"})
	if ev := sub.next(t); ev.Type != api.EventDelta {
		t.Fatalf("expected the opening catch-up delta, got %q", ev.Type)
	}
	s.srv.StartDrain()
	bye := sub.next(t)
	if bye.Type != api.EventBye || bye.Reason != api.ReasonDraining {
		t.Fatalf("terminal = %+v, want draining bye", bye)
	}
	if _, err := sub.rd.Next(); err != io.EOF {
		t.Fatalf("stream after bye: %v, want EOF", err)
	}
	aerr := subscribeError(t, s, &api.SubscribeRequest{Expr: "car & person"})
	if aerr.Code != api.CodeDraining {
		t.Fatalf("subscribe while draining = %+v, want %q", aerr, api.CodeDraining)
	}
}

// TestSubscribeResume pins the serve-side resume path: a client that
// disconnects and resubscribes with From at its last delivered vector
// continues gap-free and duplicate-free to the same one-shot answer.
func TestSubscribeResume(t *testing.T) {
	s := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	sub := openSubscription(t, s, &api.SubscribeRequest{Expr: "car & person"})
	asm := &reassembly{last: api.WatermarkVector{"auburn_c": 0, "jacksonh": 0}}
	asm.apply(t, sub.next(t).Delta) // empty genesis catch-up
	for _, to := range []float64{5, 10} {
		s.advanceAll(t, to)
		s.srv.PumpSubscriptions()
		asm.apply(t, sub.next(t).Delta)
	}
	sub.resp.Body.Close() // disconnect mid-subscription

	s.advanceAll(t, 20)
	resumed := openSubscription(t, s, &api.SubscribeRequest{Expr: "car & person", From: asm.last})
	// The catch-up delta covers everything missed while disconnected.
	asm.apply(t, resumed.next(t).Delta)
	s.advanceAll(t, 25)
	s.srv.PumpSubscriptions()
	asm.apply(t, resumed.next(t).Delta)

	oneShot, err := v1Client(s).Query(context.Background(),
		&api.QueryRequest{Expr: "car & person", At: asm.last})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(asm.items, oneShot.Items) {
		t.Fatalf("resumed reassembly != one-shot at %v:\ngot  %+v\nwant %+v",
			asm.last, asm.items, oneShot.Items)
	}
	// Five delta events: each stream opened with a catch-up (the first
	// empty, the resumed one covering the disconnected span) plus three
	// advance broadcasts.
	if st := s.srv.Snapshot(); st.Subscriptions != 2 || st.DeltaEvents != 5 {
		t.Fatalf("stats = subscriptions %d, delta_events %d", st.Subscriptions, st.DeltaEvents)
	}
}

// TestSubscribeErrors pins the pre-stream error surface.
func TestSubscribeErrors(t *testing.T) {
	s := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c")
	s.advanceAll(t, 5)
	cases := []struct {
		name string
		req  *api.SubscribeRequest
		code api.Code
	}{
		{"syntax", &api.SubscribeRequest{Expr: "car &"}, api.CodeBadExpr},
		{"frames form", &api.SubscribeRequest{Expr: "car", Form: api.FormFrames}, api.CodeBadRequest},
		{"unknown stream", &api.SubscribeRequest{Expr: "car", Streams: []string{"nope"}}, api.CodeUnknownStream},
		{"resume ahead", &api.SubscribeRequest{Expr: "car",
			From: api.WatermarkVector{"auburn_c": 999}}, api.CodePinAhead},
		{"resume partial", &api.SubscribeRequest{Expr: "car",
			Streams: []string{"auburn_c"}, From: api.WatermarkVector{"other": 1}}, api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if aerr := subscribeError(t, s, tc.req); aerr.Code != tc.code {
				t.Fatalf("error = %+v, want code %q", aerr, tc.code)
			}
		})
	}
	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(s.http.URL + api.PathSubscribe)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status %d", api.PathSubscribe, resp.StatusCode)
		}
	})
}
