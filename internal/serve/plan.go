package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"focus"
)

// PlanRequest is the POST /plan body: a compound boolean predicate over
// class names, executed across the selected streams at the watermark
// vector snapshotted at admission.
type PlanRequest struct {
	// Expr is the predicate, e.g. "car & person & !bus".
	Expr string `json:"expr"`
	// Streams restricts the plan; empty = all registered streams.
	Streams []string `json:"streams,omitempty"`
	// TopK caps the ranked result; 0 returns every matching frame.
	TopK int `json:"top_k,omitempty"`
	// Kx / Start / End / MaxClusters apply to every predicate leaf, with
	// the same semantics as the /query parameters.
	Kx          int     `json:"kx,omitempty"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	MaxClusters int     `json:"max_clusters,omitempty"`
	// Limit/Offset page the ranked items of the (cached) execution:
	// they slice the response without affecting what executes or how it
	// is cached, so all pages of one vector share one execution.
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
	// AtWatermarks pins the execution to an explicit per-stream watermark
	// vector instead of the one snapshotted at admission. Pass the
	// Watermarks map echoed by an earlier response to keep offset-based
	// pages coherent while background ingest advances: every page then
	// reads the same pinned (and cached) execution. Streams missing from
	// the map are snapshotted as usual.
	AtWatermarks map[string]float64 `json:"at_watermarks,omitempty"`
}

// PlanItem is one ranked result of a /plan response.
type PlanItem struct {
	Stream  string  `json:"stream"`
	Frame   int64   `json:"frame"`
	TimeSec float64 `json:"time_sec"`
	Segment int64   `json:"segment"`
	Score   float64 `json:"score"`
}

// PlanResponse is the /plan payload. TotalItems counts the full execution's
// items; Items carries the Limit/Offset page of them (everything when no
// Limit was given). Cached responses report the original execution's cost.
// The executed parameters (canonical Expr, TopK, leaf options, watermark
// vector) are echoed back so a verifier can replay the exact execution.
type PlanResponse struct {
	// Expr is the canonical form of the executed predicate — the form the
	// result cache keys on.
	Expr         string             `json:"expr"`
	Items        []PlanItem         `json:"items"`
	TotalItems   int                `json:"total_items"`
	Watermarks   map[string]float64 `json:"watermarks"`
	TopK         int                `json:"top_k,omitempty"`
	Kx           int                `json:"kx,omitempty"`
	Start        float64            `json:"start,omitempty"`
	End          float64            `json:"end,omitempty"`
	MaxClusters  int                `json:"max_clusters,omitempty"`
	GTInferences int                `json:"gt_inferences"`
	GPUTimeMS    float64            `json:"gpu_time_ms"`
	LatencyMS    float64            `json:"latency_ms"`
	Cached       bool               `json:"cached"`
}

// planCacheKey renders the canonical key of a plan execution pinned to a
// watermark vector. The canonical predicate (not the request text) keys the
// entry, so "car&person" and " car & person " collide; Limit/Offset are
// deliberately absent — paging shares the cached execution.
func planCacheKey(canonical string, req *PlanRequest, names []string, vector map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan|%s|k=%d&kx=%d&s=%g&e=%g&m=%d", canonical, req.TopK,
		req.Kx, req.Start, req.End, req.MaxClusters)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s@%g", n, vector[n])
	}
	return b.String()
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) { // before the ready check: mid-boot drains stay marked
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "not ready"})
		return
	}
	if r.Method != http.MethodPost {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST a JSON body to /plan"})
		return
	}
	var req PlanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad /plan body: " + err.Error()})
		return
	}
	if req.Expr == "" {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing required field: expr"})
		return
	}
	if req.TopK < 0 || req.Kx < 0 || req.MaxClusters < 0 || req.Limit < 0 || req.Offset < 0 ||
		req.Start < 0 || req.End < 0 {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "negative plan parameter"})
		return
	}
	// Compile before admission: a syntax error or unknown class must not
	// consume a query slot. The canonical form is the cache-key component.
	compiled, err := s.sys.CompilePlan(req.Expr)
	if err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if !s.limiter.Acquire() {
		s.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "overloaded: query queue is full"})
		return
	}
	defer s.limiter.Release()
	s.planQueries.Add(1)

	// Snapshot the watermark vector at admission, exactly like /query —
	// unless the request pins streams explicitly (paging across a live
	// service passes the echoed Watermarks back for coherent pages).
	names, vector, err := s.resolveVector(NormalizeStreams(req.Streams), req.AtWatermarks)
	if err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	key := planCacheKey(compiled.Canonical(), &req, names, vector)
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		hit := *(v.(*PlanResponse)) // shallow copy: Cached flag and page differ
		hit.Cached = true
		hit.Items = PagePlanItems(hit.Items, req.Limit, req.Offset)
		w.Header().Set("X-Focus-Cache", "hit")
		writeJSON(w, http.StatusOK, &hit)
		return
	}

	res, err := s.sys.ExecutePlan(compiled, focus.PlanOptions{
		Streams: names,
		TopK:    req.TopK,
		Leaf: focus.QueryOptions{
			Kx:          req.Kx,
			StartSec:    req.Start,
			EndSec:      req.End,
			MaxClusters: req.MaxClusters,
		},
		AtWatermarks: vector,
	})
	if err != nil {
		s.serverErrs.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	resp := buildPlanResponse(compiled.Canonical(), &req, res, vector)
	s.cache.put(key, resp)
	s.cacheMisses.Add(1)
	out := *resp
	out.Items = PagePlanItems(out.Items, req.Limit, req.Offset)
	w.Header().Set("X-Focus-Cache", "miss")
	writeJSON(w, http.StatusOK, &out)
}

func buildPlanResponse(canonical string, req *PlanRequest, res *focus.PlanResult, vector map[string]float64) *PlanResponse {
	resp := &PlanResponse{
		Expr:         canonical,
		Items:        make([]PlanItem, len(res.Items)),
		TotalItems:   len(res.Items),
		Watermarks:   vector,
		TopK:         req.TopK,
		Kx:           req.Kx,
		Start:        req.Start,
		End:          req.End,
		MaxClusters:  req.MaxClusters,
		GTInferences: res.Stats.GTInferences,
		GPUTimeMS:    res.Stats.GPUTimeMS,
		LatencyMS:    res.Stats.LatencyMS,
	}
	for i, it := range res.Items {
		resp.Items[i] = PlanItem{
			Stream:  it.Stream,
			Frame:   int64(it.Frame),
			TimeSec: it.TimeSec,
			Segment: int64(it.Segment),
			Score:   it.Score,
		}
	}
	return resp
}

// PagePlanItems slices the ranked items to the requested page; limit 0 means
// everything from offset on. Always returns a non-nil slice so a
// past-the-end page serializes as "items": [], not null — the natural
// "request pages until items is empty" client loop must end cleanly.
func PagePlanItems(items []PlanItem, limit, offset int) []PlanItem {
	if offset >= len(items) {
		return []PlanItem{}
	}
	items = items[offset:]
	if limit > 0 && limit < len(items) {
		items = items[:limit]
	}
	return items
}
