package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"focus/api"
	"focus/internal/subscribe"
)

// This file is the POST /v1/subscribe surface: it adapts the subscription
// registry (internal/subscribe) onto the v1 execution core. A standing
// query is the same pure function /v1/query evaluates — the handler
// resolves the request through resolveV1 and hands the registry an
// evaluator that calls executeRanked/executeTracks directly, so
// subscription evaluations share the result cache (and, beneath it, the
// engine's GT-verdict cache) with one-shot queries. Subscriptions bypass
// the admission limiter: their evaluation cadence is governed by the
// ingest clock and the registry's coalescing, not by client arrivals, so
// counting them against the query worker pool would let a slow advance
// starve interactive traffic (and vice versa).

// subscribeEval builds the registry's evaluator for a resolved standing
// query: nil pins snapshot the current watermarks, explicit pins replay a
// sealed horizon (a resume vector ahead of this process's watermark fails
// typed as pin_ahead, telling the client its resume point outruns the
// restarted server). The closure returns full, unpaged answers — v1Exec
// paging fields stay zero for subscriptions.
func (s *Server) subscribeEval(ex *v1Exec, names []string) subscribe.Eval {
	return func(pins api.WatermarkVector) (*api.QueryResponse, error) {
		_, vector, aerr := s.resolveVector(names, pins)
		if aerr != nil {
			return nil, aerr
		}
		var resp *api.QueryResponse
		if ex.tracked {
			resp, aerr = s.executeTracks(ex, names, vector)
		} else {
			resp, aerr = s.executeRanked(ex, names, vector)
		}
		if aerr != nil {
			return nil, aerr
		}
		return resp, nil
	}
}

// subscriptionKey is the coalescing identity: every subscription with the
// same canonical plan, options, form and stream set shares one evaluation
// per advance. The resume vector is deliberately absent — it shapes a
// subscriber's catch-up delta, not the group's pure function.
func subscriptionKey(canonical string, ex *v1Exec, names []string) string {
	form := api.FormRanked
	if ex.tracked {
		form = api.FormTracks
	}
	return fmt.Sprintf("%s|%s|k=%d&kx=%d&s=%g&e=%g&m=%d&mode=%s|%s",
		form, canonical, ex.topK, ex.kx, ex.start, ex.end, ex.maxClusters, ex.mode,
		strings.Join(names, ","))
}

// resolveSubscription normalizes a wire SubscribeRequest into the resolved
// execution plus the registry options that identify its group.
func (s *Server) resolveSubscription(req *api.SubscribeRequest) (*v1Exec, subscribe.Options, *api.Error) {
	if req.Form == api.FormFrames {
		return nil, subscribe.Options{}, api.Errorf(api.CodeBadRequest,
			"subscriptions answer in the ranked or tracks form, not frames")
	}
	qreq := api.QueryRequest{
		Expr:        req.Expr,
		Streams:     req.Streams,
		TopK:        req.TopK,
		Kx:          req.Kx,
		Start:       req.Start,
		End:         req.End,
		MaxClusters: req.MaxClusters,
		Form:        req.Form,
		Mode:        req.Mode,
	}
	ex, aerr := s.resolveV1(&qreq)
	if aerr != nil {
		return nil, subscribe.Options{}, aerr
	}
	// A single-class subscription without TopK would resolve to the frames
	// form for a one-shot query; deltas are defined over the ranked list,
	// so subscriptions always take the ranked path when not temporal.
	if !ex.tracked {
		ex.ranked = true
	}
	names, _, aerr := s.resolveVector(ex.streams, nil)
	if aerr != nil {
		return nil, subscribe.Options{}, aerr
	}
	names = append([]string(nil), names...)
	sort.Strings(names)
	canonical := ""
	if ex.tracked {
		canonical = ex.trackPlan.Canonical()
	} else {
		canonical = ex.compiled.Canonical()
	}
	form := api.FormRanked
	if ex.tracked {
		form = api.FormTracks
	}
	o := subscribe.Options{
		Key:     subscriptionKey(canonical, ex, names),
		Form:    form,
		Streams: names,
		Eval:    s.subscribeEval(ex, names),
		From:    req.From,
	}
	return ex, o, nil
}

// subscribeHello echoes the resolved subscription back to the client as
// the stream's first frame; a reconnecting Subscriber compares it against
// the original to detect a plan drifting underneath a resume.
func subscribeHello(ex *v1Exec, o subscribe.Options) *api.SubscribeHello {
	canonical := ""
	if ex.tracked {
		canonical = ex.trackPlan.Canonical()
	} else {
		canonical = ex.compiled.Canonical()
	}
	return &api.SubscribeHello{
		Expr:        canonical,
		Form:        o.Form,
		Streams:     o.Streams,
		TopK:        ex.topK,
		Kx:          ex.kx,
		Start:       ex.start,
		End:         ex.end,
		MaxClusters: ex.maxClusters,
		Mode:        ex.mode,
	}
}

// handleV1Subscribe is POST /v1/subscribe: resolve the standing query,
// join the registry, then stream SSE frames — hello, deltas as watermarks
// advance, and a typed terminal event — until the subscription ends or
// the client disconnects. Errors before the stream starts are ordinary
// typed JSON errors; after the hello, the stream itself is the contract.
func (s *Server) handleV1Subscribe(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{Err: api.Errorf(api.CodeDraining, "draining")})
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{Err: api.Errorf(api.CodeNotReady, "not ready")})
		return
	}
	if r.Method != http.MethodPost {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, api.Envelope{
			Err: api.Errorf(api.CodeBadRequest, "POST a JSON body to %s", api.PathSubscribe)})
		return
	}
	var req api.SubscribeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad %s body: %v", api.PathSubscribe, err))
		return
	}
	ex, o, aerr := s.resolveSubscription(&req)
	if aerr != nil {
		s.writeV1Error(w, aerr)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeV1Error(w, api.Errorf(api.CodeInternal, "response writer cannot stream"))
		return
	}
	sub, err := s.subs.Subscribe(o)
	if err != nil {
		var typed *api.Error
		if errors.As(err, &typed) {
			s.writeV1Error(w, typed)
			return
		}
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	hello := &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: subscribeHello(ex, o)}
	if writeSSE(w, flusher, hello) != nil {
		return
	}
	ctx := r.Context()
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				if term := sub.Terminal(); term != nil {
					_ = writeSSE(w, flusher, term)
				}
				return
			}
			if writeSSE(w, flusher, ev) != nil {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// writeSSE emits one event as an SSE frame and flushes it to the wire; a
// write error means the client went away.
func writeSSE(w http.ResponseWriter, f http.Flusher, ev *api.SubscribeEvent) error {
	frame, err := api.EncodeSSEFrame(ev)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// PumpSubscriptions synchronously evaluates every subscription group and,
// when ingest has finished, completes the registry (final delta + typed
// bye). It is the deterministic counterpart of the background ingesters'
// Kick, for servers running with NoBackgroundIngest.
func (s *Server) PumpSubscriptions() {
	s.subs.Pump()
	if s.IngestDone() {
		s.subs.Complete()
	}
}

// SubscriptionStats exposes the registry's counters (also in Snapshot).
func (s *Server) SubscriptionStats() subscribe.Stats { return s.subs.Stats() }
