package serve_test

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"focus"
	"focus/internal/serve"
)

// The goldens under testdata/legacy were captured from the pre-/v1 server
// (PR 4 state), when GET /query and POST /plan were the primary surface.
// They pin the legacy wire format byte for byte: the /v1 redesign keeps
// /query and /plan as shims, and a shim that changes one byte of a
// response body, status code, or cache/draining header breaks deployed
// clients that never opted into /v1. Regenerate (only when a change to the
// legacy surface is deliberate) with:
//
//	go test ./internal/serve -run TestLegacyWireCompat -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite wire-compat golden files")

// legacyRequest is one captured exchange of the legacy surface.
type legacyRequest struct {
	name   string // golden file stem
	method string
	path   string // path + query, no host
	body   string // JSON body for POSTs
}

// legacyCaptureSequence is replayed in order against one fixture, so cache
// hit/miss transitions are part of the pinned behavior (the second
// identical query MUST be a hit, with the hit marker and cached flag).
var legacyCaptureSequence = []legacyRequest{
	{name: "query_car_miss", method: "GET", path: "/query?class=car"},
	{name: "query_car_hit", method: "GET", path: "/query?class=car"},
	{name: "query_windowed", method: "GET", path: "/query?class=car&streams=auburn_c&kx=2&start=5&end=25&max_clusters=40"},
	{name: "query_pinned", method: "GET", path: "/query?class=person&at=auburn_c@10,jacksonh@20"},
	{name: "query_missing_class", method: "GET", path: "/query"},
	{name: "query_unknown_class", method: "GET", path: "/query?class=no_such_class_zzz"},
	{name: "query_unknown_stream", method: "GET", path: "/query?class=car&streams=nope"},
	{name: "query_bad_kx", method: "GET", path: "/query?class=car&kx=-3"},
	{name: "query_pin_ahead", method: "GET", path: "/query?class=car&at=auburn_c@999,jacksonh@20"},
	{name: "query_pin_outside", method: "GET", path: "/query?class=car&streams=auburn_c&at=jacksonh@10"},
	{name: "plan_miss", method: "POST", path: "/plan", body: `{"expr":"car & person","top_k":5}`},
	{name: "plan_hit", method: "POST", path: "/plan", body: `{"expr":"car & person","top_k":5}`},
	{name: "plan_canonical_shares_cache", method: "POST", path: "/plan", body: `{"expr":"  car&person ","top_k":5}`},
	{name: "plan_paged", method: "POST", path: "/plan", body: `{"expr":"car & person","top_k":5,"limit":2,"offset":1,"at_watermarks":{"auburn_c":30,"jacksonh":30}}`},
	{name: "plan_page_past_end", method: "POST", path: "/plan", body: `{"expr":"car & person","top_k":5,"limit":2,"offset":99,"at_watermarks":{"auburn_c":30,"jacksonh":30}}`},
	{name: "plan_compound", method: "POST", path: "/plan", body: `{"expr":"(car | truck) & person & !bus","top_k":7,"kx":2}`},
	{name: "plan_unanchored", method: "POST", path: "/plan", body: `{"expr":"!bus"}`},
	{name: "plan_missing_expr", method: "POST", path: "/plan", body: `{}`},
	{name: "plan_negative_param", method: "POST", path: "/plan", body: `{"expr":"car","top_k":-1}`},
	{name: "plan_bad_json", method: "POST", path: "/plan", body: `{`},
	{name: "plan_method_not_allowed", method: "GET", path: "/plan"},
	{name: "streams", method: "GET", path: "/streams"},
}

// legacyDrainSequence is replayed against a second, drained fixture.
var legacyDrainSequence = []legacyRequest{
	{name: "drain_query", method: "GET", path: "/query?class=car"},
	{name: "drain_plan", method: "POST", path: "/plan", body: `{"expr":"car"}`},
}

// renderExchange renders one exchange into the golden format: status line,
// the two semantic legacy headers (cache marker, draining marker), a blank
// line, then the raw body bytes.
func renderExchange(t *testing.T, baseURL string, r legacyRequest) []byte {
	t.Helper()
	var resp *http.Response
	var err error
	switch r.method {
	case "GET":
		resp, err = http.Get(baseURL + r.path)
	case "POST":
		resp, err = http.Post(baseURL+r.path, "application/json", strings.NewReader(r.body))
	default:
		t.Fatalf("unsupported method %q", r.method)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP %d\n", resp.StatusCode)
	fmt.Fprintf(&b, "X-Focus-Cache: %s\n", resp.Header.Get("X-Focus-Cache"))
	fmt.Fprintf(&b, "X-Focus-Draining: %s\n", resp.Header.Get("X-Focus-Draining"))
	b.WriteByte('\n')
	b.Write(body)
	return b.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "legacy", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden to capture): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire bytes diverge from pre-/v1 capture\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestLegacyWireCompat pins the legacy /query, /plan and /streams wire
// formats — bodies, status codes, cache and draining markers — byte for
// byte against captures taken before the /v1 redesign. The fixture is
// fully deterministic (seed 1, manual watermarks, simulated latencies), so
// any diff is a real wire change, not noise.
func TestLegacyWireCompat(t *testing.T) {
	svc := bootTestService(t, focus.Config{Seed: 1},
		serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	svc.advanceAll(t, 30)
	for _, r := range legacyCaptureSequence {
		checkGolden(t, r.name, renderExchange(t, svc.http.URL, r))
	}

	drained := bootTestService(t, focus.Config{Seed: 1},
		serve.Config{NoBackgroundIngest: true}, "auburn_c")
	drained.advanceAll(t, 10)
	resp, err := http.Post(drained.http.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, r := range legacyDrainSequence {
		checkGolden(t, r.name, renderExchange(t, drained.http.URL, r))
	}
}
