package serve_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/serve"
)

// TestRestartRestoresFromCheckpoint is the serve-level crash-recovery
// contract, end to end over HTTP: a durable service that dies mid-ingest
// (store abandoned unsynced — the in-process SIGKILL) must cold-start from
// its latest checkpoint instead of re-tuning, publish an updated manifest,
// and answer a query pinned at a pre-crash watermark bit-identically to
// the answer the dead process served.
func TestRestartRestoresFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fcfg := focus.Config{
		Seed:        1,
		StorePath:   filepath.Join(dir, "focus.kv"),
		Targets:     focus.Targets{Recall: 0.7, Precision: 0.7},
		TuneOptions: serve.QuickTuneOptions(),
	}
	scfg := serve.Config{
		Window:         focus.GenOptions{DurationSec: 60, SampleEvery: 1},
		TuneWindow:     focus.GenOptions{DurationSec: 20, SampleEvery: 1},
		ChunkSec:       5,
		IngestInterval: 50 * time.Millisecond,
		DataDir:        dir,
		StoreName:      "focus.kv",
	}

	boot := func() (*focus.System, *serve.Server) {
		sys, err := focus.New(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.AddTable1Stream("auburn_c"); err != nil {
			t.Fatal(err)
		}
		srv := serve.New(sys, scfg)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return sys, srv
	}

	sys1, srv1 := boot()
	ts1 := httptest.NewServer(srv1.Handler())
	cli1 := client.New(ts1.URL, client.WithRetries(0, 0))

	// Let the background ingester seal a few chunks, then capture the
	// answer the live process serves at its current watermark.
	waitFor(t, 20*time.Second, func() bool {
		return srv1.Snapshot().Watermarks["auburn_c"] >= 15
	})
	pre, err := cli1.Query(context.Background(), &api.QueryRequest{Expr: "car"})
	if err != nil {
		t.Fatal(err)
	}
	if srv1.Snapshot().Checkpoints == 0 {
		t.Fatal("no checkpoints were taken before the crash")
	}

	// Crash: abandon the store (no flush, no sync), sever the listener.
	// The graceful Stop only reaps the ingest goroutines; its
	// checkpoint-on-stop fails against the dead store by design.
	if err := sys1.Abandon(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Stop()

	// Cold start on the same store: Start must restore, not re-tune.
	sys2, srv2 := boot()
	defer sys2.Close()
	defer srv2.Stop()
	snap := srv2.Snapshot()
	if snap.RestoredStreams != 1 {
		t.Fatalf("restarted serve restored %d streams, want 1", snap.RestoredStreams)
	}
	m, err := serve.ReadManifest(dir)
	if err != nil {
		t.Fatalf("no manifest after restart: %v", err)
	}
	if ms, ok := m.Streams["auburn_c"]; !ok || !ms.Restored {
		t.Fatalf("manifest does not mark auburn_c restored: %+v", m.Streams)
	}

	// The pre-crash answer must be reproducible at its pinned vector. The
	// replayed ingest tail may still be catching up to that horizon, so
	// pin_ahead is retried.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	cli2 := client.New(ts2.URL, client.WithRetries(0, 0))
	var post *api.QueryResponse
	waitFor(t, 30*time.Second, func() bool {
		post, err = cli2.Query(context.Background(),
			&api.QueryRequest{Expr: pre.Expr, At: pre.Watermarks})
		if api.IsCode(err, api.CodePinAhead) {
			return false
		}
		if err != nil {
			t.Fatal(err)
		}
		return true
	})
	if post.TotalFrames != pre.TotalFrames ||
		!reflect.DeepEqual(post.Watermarks, pre.Watermarks) {
		t.Fatalf("post-recovery answer drifted: pre %d frames @%v, post %d frames @%v",
			pre.TotalFrames, pre.Watermarks, post.TotalFrames, post.Watermarks)
	}
	for name, sp := range pre.Streams {
		sq := post.Streams[name]
		if sq == nil || !reflect.DeepEqual(sp.Frames, sq.Frames) ||
			!reflect.DeepEqual(sp.Segments, sq.Segments) {
			t.Fatalf("stream %s answer drifted across the crash: pre %v, post %v", name, sp, sq)
		}
	}
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(100 * time.Millisecond)
	}
}
