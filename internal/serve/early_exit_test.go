package serve_test

import (
	"context"
	"reflect"
	"testing"

	"focus"
	"focus/api"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

// TestV1EarlyExitMode pins the served two-mode contract: mode=early_exit
// is an opt-in, answers are deterministic and cacheable, the two modes
// never share a cache entry, every early-exit item replays against a
// direct early-exit execution (single node, same pure function), and the
// early_exit_queries stat counts exactly the opted-in traffic.
func TestV1EarlyExitMode(t *testing.T) {
	s := bootTestService(t, focus.Config{}, serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	s.advanceAll(t, 30)
	cli := v1Client(s)
	ctx := context.Background()

	const expr = "car & person"
	exact, err := cli.Query(ctx, &api.QueryRequest{Expr: expr, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Mode != "" {
		t.Fatalf("exact response echoes mode %q, want empty (golden compatibility)", exact.Mode)
	}

	// Same expr/options with mode=early_exit at the same vector: must
	// execute fresh — the exact entry above must not be served for it.
	early, err := cli.Query(ctx, &api.QueryRequest{Expr: expr, TopK: 5, Mode: api.ModeEarlyExit,
		At: exact.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if early.Cached {
		t.Fatal("early-exit query hit the exact-mode cache entry — modes must be cache-disjoint")
	}
	if early.Mode != api.ModeEarlyExit {
		t.Fatalf("early-exit response echoes mode %q", early.Mode)
	}
	if len(early.Items) == 0 || len(early.Items) > 5 {
		t.Fatalf("early exit returned %d items for top_k 5", len(early.Items))
	}
	// On a single node early-exit is deterministic, so the strict verifier
	// replays it bit-identically (it reads the response's Mode).
	if err := loadgen.NewDirectPlanVerifier(s.sys)(early); err != nil {
		t.Fatalf("early-exit response diverges from direct replay: %v", err)
	}
	// The subset verifier (the routed-deployment contract) must accept it
	// too: verified items with exact scores, in rank order, within cap.
	if err := loadgen.NewSubsetPlanVerifier(s.sys)(early); err != nil {
		t.Fatalf("early-exit response fails the subset contract: %v", err)
	}

	// Repeating each mode hits its own entry, answers unchanged.
	earlyAgain, err := cli.Query(ctx, &api.QueryRequest{Expr: expr, TopK: 5, Mode: api.ModeEarlyExit,
		At: exact.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if !earlyAgain.Cached {
		t.Fatal("repeated early-exit query missed its cache entry")
	}
	if !reflect.DeepEqual(earlyAgain.Items, early.Items) {
		t.Fatal("cached early-exit answer differs from the first execution")
	}
	exactAgain, err := cli.Query(ctx, &api.QueryRequest{Expr: expr, TopK: 5, At: exact.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if !exactAgain.Cached {
		t.Fatal("repeated exact query missed its cache entry")
	}
	if !reflect.DeepEqual(exactAgain.Items, exact.Items) {
		t.Fatal("exact answer changed after early-exit traffic — modes leaked into each other")
	}

	// "exact" spelled explicitly is the same mode as the default: it must
	// hit the default-mode cache entry, not mint a third one.
	exactExplicit, err := cli.Query(ctx, &api.QueryRequest{Expr: expr, TopK: 5, Mode: api.ModeExact,
		At: exact.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if !exactExplicit.Cached {
		t.Fatal(`mode "exact" minted its own cache entry instead of sharing the default's`)
	}
	if exactExplicit.Mode != "" {
		t.Fatalf(`mode "exact" echoed %q, want the canonical empty form`, exactExplicit.Mode)
	}

	// Cursor paging an early-exit execution: the token freezes the mode,
	// pages share the cached execution and reassemble to the one-shot.
	assembled, err := cli.CollectPages(ctx, &api.QueryRequest{Expr: expr, TopK: 5,
		Mode: api.ModeEarlyExit, At: exact.Watermarks}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(assembled.Items, early.Items) {
		t.Fatalf("paged early-exit read diverges from one-shot:\npaged: %+v\nfull:  %+v",
			assembled.Items, early.Items)
	}

	// The validation taxonomy: early_exit needs a result cap, unknown
	// modes and temporal expressions are rejected loudly.
	for name, req := range map[string]*api.QueryRequest{
		"no top_k":     {Expr: expr, Mode: api.ModeEarlyExit},
		"unknown mode": {Expr: expr, TopK: 5, Mode: "banana"},
		"temporal":     {Expr: "car & dur(2)", TopK: 5, Mode: api.ModeEarlyExit},
	} {
		if _, err := cli.Query(ctx, req); !api.IsCode(err, api.CodeBadRequest) {
			t.Errorf("%s: got %v, want code bad_request", name, err)
		}
	}

	// early_exit_queries counts opted-in ranked queries — cache hits and
	// cursor reads of an early-exit execution included — and nothing else.
	stats := s.srv.Snapshot()
	if stats.EarlyExitQueries == 0 {
		t.Fatal("early_exit_queries stayed 0 after early-exit traffic")
	}
	if stats.EarlyExitQueries >= stats.PlanQueries {
		t.Fatalf("early_exit_queries %d >= plan_queries %d: exact traffic was miscounted",
			stats.EarlyExitQueries, stats.PlanQueries)
	}
}
