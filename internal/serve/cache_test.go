package serve

import (
	"fmt"
	"testing"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(4, 1) // single shard: eviction order is global
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), &QueryResponse{TotalFrames: i})
	}
	if c.len() != 4 {
		t.Fatalf("len %d, want 4", c.len())
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k4", &QueryResponse{TotalFrames: 4})
	if _, ok := c.get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
}

func TestResultCachePutRefreshesExisting(t *testing.T) {
	c := newResultCache(8, 2)
	c.put("k", &QueryResponse{TotalFrames: 1})
	c.put("k", &QueryResponse{TotalFrames: 2})
	got, ok := c.get("k")
	if !ok || got.(*QueryResponse).TotalFrames != 2 {
		t.Fatalf("got %+v ok=%v, want TotalFrames=2", got, ok)
	}
}

func TestResultCacheShardingCoversCapacity(t *testing.T) {
	c := newResultCache(64, 8)
	for i := 0; i < 64; i++ {
		c.put(fmt.Sprintf("key-%d", i), &QueryResponse{TotalFrames: i})
	}
	// Per-shard capacity is capacity/shards; hashing spreads keys unevenly,
	// so some evictions are expected — but the cache must retain at least
	// half its nominal capacity and never exceed it.
	if n := c.len(); n < 32 || n > 64 {
		t.Errorf("cache holds %d entries, want within [32, 64]", n)
	}
}
