package serve_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"focus"
	"focus/internal/serve"
)

// TestCacheKeyingWithPinnedVectors is the router-facing cache contract:
// requests arriving via the router carry stream subsets and explicit
// pinned vectors, and their cache keys must collide with single-node keys
// exactly when — and only when — they denote the same pure function.
func TestCacheKeyingWithPinnedVectors(t *testing.T) {
	svc := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	svc.advanceAll(t, 20)

	cacheState := func(params string) (*serve.QueryResponse, string) {
		qr, resp := svc.getQuery(t, params)
		return qr, resp.Header.Get("X-Focus-Cache")
	}

	// Snapshot query at vector (20,20) populates the cache.
	snap, state := cacheState("class=car")
	if state != "miss" {
		t.Fatalf("first snapshot query: %s, want miss", state)
	}
	// An explicitly pinned request at the same vector is the same pure
	// function — it must share the entry, not create a colliding one.
	pinned, state := cacheState("class=car&at=auburn_c@20,jacksonh@20")
	if state != "hit" {
		t.Fatalf("pinned request at the snapshot vector: %s, want hit", state)
	}
	if pinned.TotalFrames != snap.TotalFrames {
		t.Fatalf("pinned hit served %d frames, snapshot served %d", pinned.TotalFrames, snap.TotalFrames)
	}
	// A different pinned vector is a different function: own entry.
	if _, state := cacheState("class=car&at=auburn_c@10,jacksonh@20"); state != "miss" {
		t.Fatalf("pinned request at a lower vector: %s, want miss", state)
	}
	// A router-style subset request must not collide with the full-corpus
	// entry (its key renders only its own streams)…
	sub, state := cacheState("class=car&streams=auburn_c")
	if state != "miss" {
		t.Fatalf("subset request: %s, want miss", state)
	}
	if len(sub.Streams) != 1 {
		t.Fatalf("subset request answered %d streams", len(sub.Streams))
	}
	// …while the same subset pinned at the same vector shares the subset
	// entry.
	if _, state := cacheState("class=car&streams=auburn_c&at=auburn_c@20"); state != "hit" {
		t.Fatalf("pinned subset at the snapshot vector: %s, want hit", state)
	}

	// Ingest advances: the snapshot key moves, but a pinned replay of the
	// old vector still hits the old entry — that is what keeps routed
	// paging and verification coherent while shards ingest.
	svc.advanceAll(t, 30)
	if _, state := cacheState("class=car"); state != "miss" {
		t.Fatalf("snapshot query after advance: %s, want miss", state)
	}
	old, state := cacheState("class=car&at=auburn_c@20,jacksonh@20")
	if state != "hit" {
		t.Fatalf("pinned replay of the old vector: %s, want hit", state)
	}
	if old.TotalFrames != snap.TotalFrames {
		t.Fatalf("pinned replay served %d frames, original %d", old.TotalFrames, snap.TotalFrames)
	}

	// A pin beyond the sealed horizon has no stable answer — and would
	// poison the cache entry a future snapshot legitimately keys on. 400.
	resp, err := http.Get(svc.http.URL + "/query?class=car&at=auburn_c@55,jacksonh@30")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("future-pinned query: status %d, want 400", resp.StatusCode)
	}
}

// TestDrainingRejectsQueriesKeepsOpsSurfaces pins the shard-side drain
// semantics the router consumes.
func TestDrainingRejectsQueriesKeepsOpsSurfaces(t *testing.T) {
	svc := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c")
	svc.advanceAll(t, 10)

	// Admin drain over HTTP, as the operator (or a rollout) would.
	resp, err := http.Post(svc.http.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /drain: status %d", resp.StatusCode)
	}

	resp, err = http.Get(svc.http.URL + "/query?class=car")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(serve.DrainingHeader) == "" {
		t.Fatalf("query while draining: status %d, draining header %q",
			resp.StatusCode, resp.Header.Get(serve.DrainingHeader))
	}

	resp, err = http.Get(svc.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(serve.DrainingHeader) == "" {
		t.Fatalf("healthz while draining: status %d, draining header %q",
			resp.StatusCode, resp.Header.Get(serve.DrainingHeader))
	}

	// Ops surfaces stay live so the router keeps its ownership view.
	for _, ep := range []string{"/streams", "/stats"} {
		resp, err := http.Get(svc.http.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while draining: status %d", ep, resp.StatusCode)
		}
	}
	if !svc.srv.Snapshot().Draining {
		t.Fatal("Snapshot does not report draining")
	}
}

// TestStatsConcurrentWithBootAndDrain is the -race regression net for the
// /stats counter audit: the ops surfaces are served from the moment the
// listener is up — during Start (readiness probing), during queries, and
// during a drain — so every counter Snapshot reads must be safely
// published. The uptime field was the one audit finding: Start stored a
// plain time.Time that Snapshot read concurrently; it is atomic now.
func TestStatsConcurrentWithBootAndDrain(t *testing.T) {
	fcfg := focus.Config{
		Seed:        1,
		Targets:     focus.Targets{Recall: 0.7, Precision: 0.7},
		TuneOptions: serve.QuickTuneOptions(),
	}
	sys, err := focus.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if _, err := sys.AddTable1Stream("auburn_c"); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sys, serve.Config{
		Window:             focus.GenOptions{DurationSec: 40, SampleEvery: 1},
		TuneWindow:         focus.GenOptions{DurationSec: 20, SampleEvery: 1},
		NoBackgroundIngest: true,
	})
	// Listener up before Start, exactly like cmd/focus-serve: probes race
	// the boot path.
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	stop := make(chan struct{})
	var probes sync.WaitGroup
	for i := 0; i < 4; i++ {
		probes.Add(1)
		go func() {
			defer probes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ep := range []string{"/stats", "/healthz", "/streams", "/query?class=car"} {
					resp, err := http.Get(ts.URL + ep)
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}()
	}

	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	for _, sess := range sys.Sessions() {
		if _, err := sess.AdvanceLive(10); err != nil {
			t.Fatal(err)
		}
	}
	srv.StartDrain()
	close(stop)
	probes.Wait()
	if !srv.Snapshot().Ready || !srv.Snapshot().Draining {
		t.Fatalf("final snapshot: %+v", srv.Snapshot())
	}
}
