// Package serve turns a focus.System into a resident query service: streams
// ingest continuously in the background while many concurrent clients query
// over HTTP/JSON. It is the "low latency, low cost after-the-fact query"
// regime of the paper (§1, §6.7) run as a server instead of a library call.
//
// Three mechanisms make serving safe and cheap under load:
//
//   - Watermark-consistent queries: every request snapshots the per-stream
//     ingest watermarks at admission and executes pinned to that vector
//     (Query.AtWatermarks), so queries never race the background ingesters
//     and their answers are pure functions of (plan, options, vector).
//   - A sharded LRU result cache keyed by exactly that tuple: repeated
//     popular queries are served without any GT-CNN work, and entries
//     self-invalidate as watermarks advance (the key changes).
//   - Admission control via a bounded worker pool with a bounded wait queue
//     (parallel.Limiter): overload degrades into structured "overloaded"
//     rejections rather than unbounded queueing and latency collapse.
//
// The primary surface is the versioned wire contract of focus/api: POST
// /v1/query (one endpoint for single-class and compound queries — a
// single-class query is a one-leaf plan — with opaque watermark-stable
// cursor paging), GET /v1/streams, GET /v1/stats. The pre-v1 endpoints
// (GET /query, POST /plan) remain as deprecated shims that translate into
// the same execution core and reproduce the legacy wire format byte for
// byte (pinned by the goldens under testdata/legacy); their use is counted
// in the stats legacy_requests counter. GET /healthz and POST /drain are
// the unversioned process-lifecycle surface.
//
// The server is also shard-aware: a focus-router front tier can place
// several serve processes behind one endpoint, speaking v1 on both sides.
// /v1/streams reports each stream's ingest watermark, /v1/query accepts
// explicit pinned watermark vectors (QueryRequest.At), and /healthz
// distinguishes "not ready" from "draining" so the router can take a
// shard out of rotation before it restarts. See internal/router and
// OPERATIONS.md.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"focus"
	"focus/api"
	"focus/internal/parallel"
	"focus/internal/subscribe"
	"focus/internal/tune"
)

// QuickTuneOptions is a deliberately small parameter-search space for
// service boot: the full sweep is an offline activity (the paper retunes
// "once every few days"), and a booting server only needs a reasonable
// configuration fast. Pass it as focus.Config.TuneOptions.
func QuickTuneOptions() *tune.Options {
	o := tune.DefaultOptions()
	o.LsCandidates = []int{20}
	o.TCandidates = []float64{2.5, 3.0}
	o.KCandidates = []int{4, 16, 60}
	o.MaxSampleSightings = 800
	return &o
}

// Config tunes the server.
type Config struct {
	// Window is each stream's full ingest horizon (the recorded video the
	// background ingester works through).
	Window focus.GenOptions
	// TuneWindow, when non-zero, is a shorter window for the boot-time
	// parameter sweep; zero tunes over Window.
	TuneWindow focus.GenOptions
	// ChunkSec is the watermark granularity: how much stream time each
	// background ingest step seals. Default 5s.
	ChunkSec float64
	// IngestInterval is the real-time pause between background ingest steps;
	// 0 ingests as fast as the CPU allows.
	IngestInterval time.Duration
	// QueryWorkers bounds concurrently executing queries. Default 8.
	QueryWorkers int
	// QueueDepth bounds clients waiting for a query worker before new
	// arrivals are rejected as overloaded. Default 2x QueryWorkers.
	QueueDepth int
	// CacheCapacity is the result cache size in responses. Default 4096.
	CacheCapacity int
	// CacheShards is the result cache's shard count. Default 16.
	CacheShards int
	// NoBackgroundIngest starts live ingestion without spawning the
	// background ingester goroutines: the caller advances each session's
	// watermark by hand (Session.AdvanceLive). Tests use it to make cache
	// hit/miss sequences deterministic.
	NoBackgroundIngest bool
	// CheckpointEvery checkpoints each stream's live ingestion every N
	// ingest chunks (plus one final checkpoint when its window completes).
	// 0 defaults to 1 — every chunk; negative disables checkpointing.
	// Effective only when the system has a persistent store.
	CheckpointEvery int
	// DataDir, when set, is the durable data directory: MANIFEST.json is
	// published there (atomically) after startup and after every
	// checkpoint round. The store file itself is placed by the caller
	// (focus.Config.StorePath); StoreName names it inside the manifest.
	DataDir   string
	StoreName string
	// Fault arms the fault-injection middleware (see FaultConfig). The
	// zero value injects nothing; production deployments leave it zero.
	Fault FaultConfig
	// AllowNoStreams lets Start succeed with zero registered streams: an
	// elastic shard boots empty and receives its share through stream
	// handoff (/v1/admin/import).
	AllowNoStreams bool
	// HandoffTTL bounds a half-done handoff: a sealed stream auto-resumes
	// ingestion, and an unactivated import is auto-discarded, this long
	// after the step that created the state. 0 means DefaultHandoffTTL.
	HandoffTTL time.Duration
}

func (c *Config) applyDefaults() {
	if c.Window.DurationSec <= 0 {
		c.Window = focus.GenOptions{DurationSec: 240, SampleEvery: 1}
	}
	if c.Window.SampleEvery < 1 {
		c.Window.SampleEvery = 1
	}
	if c.ChunkSec <= 0 {
		c.ChunkSec = 5
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.QueryWorkers
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
}

// Server is the resident query service.
type Server struct {
	sys *focus.System
	cfg Config

	limiter *parallel.Limiter
	cache   *resultCache
	// subs coalesces standing queries (POST /v1/subscribe) onto one
	// incremental evaluation per plan per watermark advance.
	subs    *subscribe.Registry
	mux     *http.ServeMux
	handler http.Handler

	ready atomic.Bool
	// draining rejects new query work with the structured "draining" error
	// while health/stats endpoints stay live, so a router can take the
	// shard out of rotation before it restarts.
	draining atomic.Bool
	// startedNS is the boot time in unix nanoseconds. Atomic because a
	// deployment exposes /healthz and /stats while Start is still tuning
	// (readiness probing), so Snapshot can race the Start-time store.
	startedNS atomic.Int64
	stopCh    chan struct{}
	stopped   sync.Once
	wg        sync.WaitGroup

	// checkpointed tracks each stream's last durable checkpoint (for the
	// manifest); manifestMu serializes whole-manifest publishes.
	checkpointMu sync.Mutex
	checkpointed map[string]ManifestStream
	manifestMu   sync.Mutex

	// handoffMu guards the live-handoff state (see handoff.go): per-stream
	// ingest controls, streams imported but not yet activated (hidden from
	// queries and /v1/streams), streams released to another shard (typed
	// unavailable), and the auto-discard timers of pending imports.
	handoffMu    sync.Mutex
	ctls         map[string]*ingestCtl
	hidden       map[string]bool
	moved        map[string]bool
	importTimers map[string]*time.Timer

	// counters
	queries      atomic.Int64
	planQueries  atomic.Int64
	trackQueries atomic.Int64
	// earlyExitQueries counts ranked queries served in early-exit mode
	// (a subset of planQueries; cache hits included).
	earlyExitQueries atomic.Int64
	legacyReqs       atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	rejected         atomic.Int64
	clientErrs       atomic.Int64
	serverErrs       atomic.Int64
	ingestErrs       atomic.Int64
	checkpoints      atomic.Int64
	// checkpointErrs counts failed checkpoint rounds and failed manifest
	// publishes; ingestion continues either way (durability degrades, the
	// service does not).
	checkpointErrs  atomic.Int64
	restoredStreams atomic.Int64
	faultErrors     atomic.Int64
	faultBlackholed atomic.Int64
	// handoff counters: streams sealed, imported, released, and handoff
	// step failures (see OPERATIONS.md §"Resharding").
	seals       atomic.Int64
	imports     atomic.Int64
	releases    atomic.Int64
	handoffErrs atomic.Int64
}

// New builds a server around a system whose streams are already registered
// (but not ingested; Start handles tuning and live ingestion).
func New(sys *focus.System, cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{
		sys:          sys,
		cfg:          cfg,
		limiter:      parallel.NewLimiter(cfg.QueryWorkers, cfg.QueueDepth),
		cache:        newResultCache(cfg.CacheCapacity, cfg.CacheShards),
		subs:         subscribe.NewRegistry(),
		checkpointed: make(map[string]ManifestStream),
		stopCh:       make(chan struct{}),
		ctls:         make(map[string]*ingestCtl),
		hidden:       make(map[string]bool),
		moved:        make(map[string]bool),
		importTimers: make(map[string]*time.Timer),
	}
	s.mux = http.NewServeMux()
	// The v1 contract is the primary surface…
	s.mux.HandleFunc(api.PathQuery, s.handleV1Query)
	s.mux.HandleFunc(api.PathSubscribe, s.handleV1Subscribe)
	s.mux.HandleFunc(api.PathStreams, s.handleStreams)
	s.mux.HandleFunc(api.PathStats, s.handleStats)
	// …the pre-v1 query endpoints remain as deprecated shims…
	s.mux.HandleFunc(api.PathLegacyQuery, s.handleLegacyQuery)
	s.mux.HandleFunc(api.PathLegacyPlan, s.handleLegacyPlan)
	// …and the unversioned operational endpoints stay where ops tooling
	// expects them.
	s.mux.HandleFunc("/streams", s.handleStreams)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/drain", s.handleDrain)
	// The live-handoff admin surface (see handoff.go): a reshard
	// coordinator moving streams between shards drives these.
	s.mux.HandleFunc(api.PathAdminSeal, s.handleAdminSeal)
	s.mux.HandleFunc(api.PathAdminResume, s.handleAdminResume)
	s.mux.HandleFunc(api.PathAdminExport, s.handleAdminExport)
	s.mux.HandleFunc(api.PathAdminImport, s.handleAdminImport)
	s.mux.HandleFunc(api.PathAdminActivate, s.handleAdminActivate)
	s.mux.HandleFunc(api.PathAdminRelease, s.handleAdminRelease)
	s.handler = s.mux
	if cfg.Fault.Active() {
		s.handler = newFaultInjector(cfg.Fault, s, s.mux)
	}
	return s
}

// DrainingHeader marks a legacy-surface 503 caused by draining (this
// shard's, or — when set by the router — the named shard's). The v1
// surface carries the same information as the structured error code
// "draining" (with the shard name in Error.Shard); the header survives on
// the legacy shims and on /healthz, where pre-v1 tooling sniffs it.
const DrainingHeader = "X-Focus-Draining"

// Handler returns the HTTP handler (fault-injection middleware included,
// when armed); callers own the listener and http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// Start brings every registered stream live and returns once the service
// is ready; ingestion keeps advancing watermarks until the window is
// exhausted or Stop is called. Streams with a durable checkpoint in the
// system's store cold-start from it (RestoreLive): no re-tune, no
// re-ingest of the sealed horizon, and answers bit-identical to a process
// that never crashed — the checkpoint's own window supersedes Config.
// Window for such streams, since the resumed ingestion must replay the
// exact stream it checkpointed. Everything else is tuned (in parallel, if
// no selection is carried yet) and started fresh — the paper's
// one-worker-per-stream deployment (§5).
func (s *Server) Start() error {
	sessions := s.sys.Sessions()
	if len(sessions) == 0 && !s.cfg.AllowNoStreams {
		return fmt.Errorf("serve: no streams registered")
	}
	// Imports whose handoff never committed are not ours: purge the ones no
	// longer configured on this shard (configured ones are handled, and
	// restarted fresh, in the per-stream loop below).
	for _, name := range s.sys.PendingImports() {
		if s.sys.Session(name) == nil {
			if err := s.sys.DiscardPendingImport(name); err != nil {
				return fmt.Errorf("serve: discarding pending import of %q: %w", name, err)
			}
		}
	}
	tuneWindow := s.cfg.TuneWindow
	if tuneWindow.DurationSec <= 0 {
		tuneWindow = s.cfg.Window
	}
	workers := parallel.StreamWorkers(len(sessions), 0)
	err := parallel.ForEach(workers, len(sessions), func(i int) error {
		sess := sessions[i]
		if s.sys.PendingImport(sess.Name()) {
			// This process died between importing the stream and the
			// cluster committing the handoff: the ownership flip never
			// happened, so the stream is not ours — discard the imported
			// checkpoint and (if the stream is still configured here)
			// start it fresh as if the import never happened.
			if err := s.sys.DiscardPendingImport(sess.Name()); err != nil {
				return fmt.Errorf("serve: discarding pending import of %q: %w", sess.Name(), err)
			}
		}
		if s.sys.Persistent() && sess.HasLiveCheckpoint() {
			restored, err := sess.RestoreLive()
			if err != nil {
				return fmt.Errorf("serve: restoring %q from checkpoint: %w", sess.Name(), err)
			}
			if restored {
				s.restoredStreams.Add(1)
				s.checkpointMu.Lock()
				s.checkpointed[sess.Name()] = ManifestStream{
					Watermark: sess.Watermark(),
					Done:      sess.LiveDone(),
					Restored:  true,
				}
				s.checkpointMu.Unlock()
				return nil
			}
		}
		if sess.Selection() == nil {
			if err := sess.Tune(tuneWindow); err != nil {
				return fmt.Errorf("serve: tuning %q: %w", sess.Name(), err)
			}
		}
		if err := sess.StartLive(s.cfg.Window); err != nil {
			return fmt.Errorf("serve: starting live ingest of %q: %w", sess.Name(), err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.startedNS.Store(time.Now().UnixNano())
	s.publishManifestNow()
	if !s.cfg.NoBackgroundIngest {
		for _, sess := range sessions {
			s.startIngestLoop(sess)
		}
	}
	s.ready.Store(true)
	return nil
}

// startIngestLoop spawns the stream's ingester goroutine with a fresh
// ingest control (seal rendezvous + exit signal). Also used when an
// imported stream is activated mid-flight.
func (s *Server) startIngestLoop(sess *focus.Session) {
	ctl := &ingestCtl{sealReq: make(chan *sealWait), loopDone: make(chan struct{}), loopRunning: true}
	s.handoffMu.Lock()
	s.ctls[sess.Name()] = ctl
	s.handoffMu.Unlock()
	s.wg.Add(1)
	go s.ingestLoop(sess, ctl)
}

// Stop halts the background ingesters (watermarks freeze where they are) and
// waits for them to exit. Queries keep being served against the frozen
// horizon until the caller shuts the HTTP server down.
func (s *Server) Stop() {
	s.stopped.Do(func() { close(s.stopCh) })
	s.wg.Wait()
	// Pending-import discard timers must not fire into a stopped server;
	// the markers they would have cleaned up are handled at next boot.
	s.handoffMu.Lock()
	for _, t := range s.importTimers {
		t.Stop()
	}
	s.handoffMu.Unlock()
	// Standing queries cannot outlive the ingest clock that feeds them:
	// close every subscription with a typed terminal event.
	s.subs.Drain()
	if s.cfg.NoBackgroundIngest {
		// No ingester goroutines own the sessions; reclaim their generators
		// here. Callers must not AdvanceLive after Stop.
		for _, sess := range s.sys.Sessions() {
			sess.StopLive()
		}
	}
}

// StartDrain takes the server out of rotation: subsequent query requests
// are rejected with the structured "draining" error (503, plus the legacy
// marker header on the shim surface) while /streams, /stats and /healthz
// keep answering, and background ingestion keeps advancing watermarks.
// In-flight queries finish normally; standing queries are closed with a
// typed EventBye/ReasonDraining terminal (their evaluation is exactly the
// load draining exists to shed). Draining is one-way; restart the process
// to rejoin rotation.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.subs.Drain()
}

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleDrain is the admin surface of StartDrain (POST /drain): a router or
// an operator's curl takes the shard out of rotation before a restart. It
// shares the query listener and — like every endpoint of this service —
// carries no authentication, so deployments must keep the port inside the
// trust boundary (see OPERATIONS.md §7); draining is irreversible until
// the process restarts.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST to /drain"})
		return
	}
	s.StartDrain()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"draining"}`)
}

// ingestLoop advances one stream's live ingestion chunk by chunk until the
// window is exhausted or the server stops, checkpointing on the configured
// cadence. The loop is the session's ingester goroutine — the one vantage
// from which CheckpointLive is legal (the worker is quiescent between
// AdvanceLive calls); seal requests (stream handoff) rendezvous here
// between chunks for the same reason.
func (s *Server) ingestLoop(sess *focus.Session, ctl *ingestCtl) {
	defer s.wg.Done()
	defer func() {
		// Mark the loop gone before loopDone closes: the stream is
		// quiescent from here, and seal requests take the direct path.
		ctl.mu.Lock()
		ctl.loopRunning = false
		ctl.mu.Unlock()
		close(ctl.loopDone)
	}()
	next := sess.Watermark() + s.cfg.ChunkSec
	ckpt := s.sys.Persistent() && s.cfg.CheckpointEvery > 0
	rounds := 0
	for {
		select {
		case <-s.stopCh:
			// A deliberate stop is the moment durability pays: checkpoint
			// the frozen horizon so the next boot resumes here instead of
			// re-ingesting the window.
			if ckpt {
				s.checkpointStream(sess)
			}
			sess.StopLive()
			return
		case sw := <-ctl.sealReq:
			if !s.holdSeal(sess, ctl, sw) {
				sess.StopLive()
				return
			}
		default:
		}
		wm, err := sess.AdvanceLive(next)
		if err != nil {
			// The stream keeps serving at its frozen watermark; surface the
			// stall through /stats rather than tearing the service down.
			s.ingestErrs.Add(1)
			return
		}
		rounds++
		// The watermark advanced: standing queries may owe their
		// subscribers a delta. Kick is async and coalescing, so the
		// ingest cadence never blocks on evaluation.
		s.subs.Kick()
		if sess.LiveDone() {
			// Final checkpoint regardless of cadence: it carries the
			// finished index, so a restart serves it without any replay.
			if ckpt {
				s.checkpointStream(sess)
			}
			// The last stream to finish completes the registry: every
			// subscriber gets its final delta at the frozen vector and a
			// typed bye.
			if s.IngestDone() {
				s.subs.Complete()
			}
			return
		}
		if ckpt && rounds%s.cfg.CheckpointEvery == 0 {
			s.checkpointStream(sess)
		}
		next = wm + s.cfg.ChunkSec
		if s.cfg.IngestInterval > 0 {
			select {
			case <-s.stopCh:
				if ckpt {
					s.checkpointStream(sess)
				}
				sess.StopLive()
				return
			case sw := <-ctl.sealReq:
				if !s.holdSeal(sess, ctl, sw) {
					sess.StopLive()
					return
				}
			case <-time.After(s.cfg.IngestInterval):
			}
		}
	}
}

// checkpointStream runs one durable checkpoint round for the stream and
// republishes the manifest. Failures are counted, not fatal: the service
// keeps ingesting and serving at full consistency; only crash-recovery
// freshness degrades (the next cold start replays a longer tail).
func (s *Server) checkpointStream(sess *focus.Session) {
	if err := sess.CheckpointLive(); err != nil {
		s.checkpointErrs.Add(1)
		return
	}
	s.checkpoints.Add(1)
	s.checkpointMu.Lock()
	entry := s.checkpointed[sess.Name()]
	entry.Watermark = sess.Watermark()
	entry.Done = sess.LiveDone()
	s.checkpointed[sess.Name()] = entry
	s.checkpointMu.Unlock()
	s.publishManifestNow()
}

// IngestDone reports whether every stream has ingested its whole window.
func (s *Server) IngestDone() bool {
	for _, sess := range s.sys.Sessions() {
		if !sess.LiveDone() {
			return false
		}
	}
	return true
}

// resolveVector resolves a request's target streams (empty = every
// registered stream) and the watermark vector the execution is pinned to:
// each stream's watermark is snapshotted at admission unless the caller
// pinned it explicitly through `pins` (cursor paging does this to keep
// pages coherent while ingest advances, and the router passes merged
// vectors through). Every query form shares this resolution, so the
// surfaces can never diverge on snapshot semantics.
//
// A pin ahead of the stream's current watermark is rejected (pin_ahead):
// the horizon is not sealed yet, so the answer would silently change as
// ingest catches up — and, worse, it would be cached under the future
// vector's key and served stale once a snapshot legitimately lands there.
// Pins at or below the watermark stay valid forever (watermarks are
// monotonic). A pin naming a stream outside the query's target set is
// rejected too: silently dropping it (a typo, a removed stream) would
// quietly unpin the read — the exact incoherence pinning exists to
// prevent.
func (s *Server) resolveVector(names []string, pins api.WatermarkVector) ([]string, api.WatermarkVector, *api.Error) {
	if len(names) == 0 {
		for _, sess := range s.sys.Sessions() {
			// Streams mid-handoff (imported, not yet activated) are not
			// served here yet; the implicit all-streams expansion must not
			// sweep them in.
			if s.isHidden(sess.Name()) {
				continue
			}
			names = append(names, sess.Name())
		}
	}
	vector := make(api.WatermarkVector, len(names))
	for _, n := range names {
		sess := s.sys.Session(n)
		if sess == nil {
			if s.isMoved(n) {
				return nil, nil, api.Errorf(api.CodeUnavailable,
					"stream %q moved to another shard", n)
			}
			return nil, nil, api.Errorf(api.CodeUnknownStream, "unknown stream %q", n)
		}
		if s.isHidden(n) {
			// Imported but not yet activated: ownership has not flipped to
			// this shard. Typed and retryable — the flip is in flight.
			return nil, nil, api.Errorf(api.CodeNotReady,
				"stream %q is mid-handoff on this shard", n)
		}
		wm := sess.Watermark()
		if at, ok := pins[n]; ok {
			if at > wm {
				return nil, nil, api.Errorf(api.CodePinAhead,
					"stream %q pinned at %g beyond its ingest watermark %g", n, at, wm)
			}
			vector[n] = at
		} else {
			vector[n] = wm
		}
	}
	for n := range pins {
		if _, ok := vector[n]; !ok {
			return nil, nil, api.Errorf(api.CodeBadRequest,
				"pinned stream %q is not among the query's streams", n)
		}
	}
	return names, vector, nil
}

// StreamStatus is one entry of the /v1/streams (and legacy /streams)
// payload — the shared wire type, shard-annotated only by a router.
type StreamStatus = api.StreamStatus

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	var out []StreamStatus
	for _, sess := range s.sys.Sessions() {
		// A stream imported but not activated is not owned here yet: the
		// router must not see two shards report it before the flip.
		if s.isHidden(sess.Name()) {
			continue
		}
		spec := sess.Stream().Spec
		st := sess.IngestStats()
		status := StreamStatus{
			Name:        spec.Name,
			Type:        string(spec.Type),
			Location:    spec.Location,
			Watermark:   sess.Watermark(),
			WindowSec:   s.cfg.Window.DurationSec,
			IngestDone:  sess.LiveDone(),
			Frames:      st.Frames,
			Sightings:   st.Sightings,
			CNNInfers:   st.CNNInferences,
			DedupRate:   st.DedupRate(),
			Clusters:    st.Clusters,
			IngestGPUMS: st.IngestGPUMS,
		}
		if ix := sess.Index(); ix != nil {
			status.Clusters = ix.NumClusters()
		}
		if sel := sess.Selection(); sel != nil {
			status.Model = sel.Chosen.Model.Name
			status.K = sel.Chosen.K
			status.T = sel.Chosen.T
		}
		status.Epoch = s.sys.StreamEpoch(spec.Name)
		out = append(out, status)
	}
	writeJSON(w, http.StatusOK, out)
}

// Stats is the /v1/stats (and legacy /stats) payload.
type Stats struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Ready       bool    `json:"ready"`
	Draining    bool    `json:"draining"`
	Queries     int64   `json:"queries"`
	PlanQueries int64   `json:"plan_queries"`
	// TrackQueries counts temporal (tracks-form) queries.
	TrackQueries int64 `json:"track_queries"`
	// EarlyExitQueries counts ranked queries served in early-exit mode, a
	// subset of PlanQueries — the operator's gauge for how much traffic
	// has opted into the approximate mode (see OPERATIONS.md).
	EarlyExitQueries int64 `json:"early_exit_queries"`
	// LegacyRequests counts requests arriving through the deprecated
	// /query and /plan shims — the operator's client-migration gauge.
	LegacyRequests int64 `json:"legacy_requests"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	Rejected       int64 `json:"rejected"`
	ClientErrors   int64 `json:"client_errors"`
	ServerErrors   int64 `json:"server_errors"`
	IngestErrors   int64 `json:"ingest_errors"`
	// Checkpoints counts durable checkpoint rounds; CheckpointErrors
	// failed rounds (including manifest publish failures);
	// RestoredStreams how many streams this process cold-started from a
	// checkpoint rather than ingesting from scratch.
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
	RestoredStreams  int64 `json:"restored_streams"`
	// Subscriptions counts standing queries ever accepted on /v1/subscribe;
	// SubscriptionsActive the ones currently streaming;
	// SubscriptionGroups the coalescing groups they share. DeltaEvents
	// counts delta events delivered to subscriber queues and DeltaDrops
	// subscribers shed for falling behind (see OPERATIONS.md §9).
	// SubscribeEvals counts coalesced incremental evaluations (the
	// denominator of the cost-sharing claim: N overlapping subscribers,
	// ~1 evaluation per advance) and SubscribeEvalErrors the failed ones.
	Subscriptions       int64 `json:"subscriptions"`
	SubscriptionsActive int64 `json:"subscriptions_active"`
	SubscriptionGroups  int   `json:"subscription_groups"`
	DeltaEvents         int64 `json:"delta_events"`
	DeltaDrops          int64 `json:"delta_drops"`
	SubscribeEvals      int64 `json:"subscribe_evals"`
	SubscribeEvalErrors int64 `json:"subscribe_eval_errors"`
	// HandoffSeals, HandoffImports and HandoffReleases count live-handoff
	// steps this shard performed (source seals, destination imports,
	// source releases); HandoffErrors counts failed handoff steps,
	// including TTL-expired imports rolled back. See OPERATIONS.md
	// §"Resharding".
	HandoffSeals    int64 `json:"handoff_seals"`
	HandoffImports  int64 `json:"handoff_imports"`
	HandoffReleases int64 `json:"handoff_releases"`
	HandoffErrors   int64 `json:"handoff_errors"`
	// FaultErrors and FaultBlackholed count injected failures (zero
	// unless the fault-injection middleware is armed).
	FaultErrors     int64              `json:"fault_errors"`
	FaultBlackholed int64              `json:"fault_blackholed"`
	InFlight        int                `json:"in_flight"`
	Waiting         int                `json:"waiting"`
	Watermarks      map[string]float64 `json:"watermarks"`
	IngestGPUMS     float64            `json:"ingest_gpu_ms"`
	QueryGPUMS      float64            `json:"query_gpu_ms"`
	QueryGPUOps     int64              `json:"query_gpu_ops"`
}

// Snapshot returns the server's current counters (also served at /stats).
func (s *Server) Snapshot() Stats {
	meter := s.sys.GPUMeter()
	subs := s.subs.Stats()
	var uptime float64
	if ns := s.startedNS.Load(); ns > 0 {
		uptime = time.Since(time.Unix(0, ns)).Seconds()
	}
	return Stats{
		UptimeSec:           uptime,
		Ready:               s.ready.Load(),
		Draining:            s.draining.Load(),
		Queries:             s.queries.Load(),
		PlanQueries:         s.planQueries.Load(),
		TrackQueries:        s.trackQueries.Load(),
		EarlyExitQueries:    s.earlyExitQueries.Load(),
		LegacyRequests:      s.legacyReqs.Load(),
		CacheHits:           s.cacheHits.Load(),
		CacheMisses:         s.cacheMisses.Load(),
		CacheEntries:        s.cache.len(),
		Rejected:            s.rejected.Load(),
		ClientErrors:        s.clientErrs.Load(),
		ServerErrors:        s.serverErrs.Load(),
		IngestErrors:        s.ingestErrs.Load(),
		Checkpoints:         s.checkpoints.Load(),
		CheckpointErrors:    s.checkpointErrs.Load(),
		RestoredStreams:     s.restoredStreams.Load(),
		Subscriptions:       subs.Subscriptions,
		SubscriptionsActive: subs.Active,
		SubscriptionGroups:  subs.Groups,
		DeltaEvents:         subs.DeltaEvents,
		DeltaDrops:          subs.Drops,
		SubscribeEvals:      subs.Evals,
		SubscribeEvalErrors: subs.EvalErrors,
		HandoffSeals:        s.seals.Load(),
		HandoffImports:      s.imports.Load(),
		HandoffReleases:     s.releases.Load(),
		HandoffErrors:       s.handoffErrs.Load(),
		FaultErrors:         s.faultErrors.Load(),
		FaultBlackholed:     s.faultBlackholed.Load(),
		InFlight:            s.limiter.InFlight(),
		Waiting:             s.limiter.Waiting(),
		Watermarks:          s.sys.Watermarks(),
		IngestGPUMS:         meter.IngestMS,
		QueryGPUMS:          meter.QueryMS,
		QueryGPUOps:         meter.QueryOps,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Draining wins over "not ready": a drain issued mid-boot (a rollout
	// reversing itself) must still read as deliberate, marker and all, or
	// tooling would count it as an outage.
	if s.draining.Load() {
		// Distinguishable from "down" and from "not ready": the router keeps
		// the shard's stream ownership but stops routing queries to it. The
		// router reads the body's status field; the header stays for pre-v1
		// tooling.
		w.Header().Set(DrainingHeader, "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"not ready"}`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
