// Package serve turns a focus.System into a resident query service: streams
// ingest continuously in the background while many concurrent clients query
// over HTTP/JSON. It is the "low latency, low cost after-the-fact query"
// regime of the paper (§1, §6.7) run as a server instead of a library call.
//
// Three mechanisms make serving safe and cheap under load:
//
//   - Watermark-consistent queries: every request snapshots the per-stream
//     ingest watermarks at admission and executes pinned to that vector
//     (Query.AtWatermarks), so queries never race the background ingesters
//     and their answers are pure functions of (class, options, vector).
//   - A sharded LRU result cache keyed by exactly that tuple: repeated
//     popular queries are served without any GT-CNN work, and entries
//     self-invalidate as watermarks advance (the key changes). Compound
//     /plan queries extend the same key scheme with the plan's canonical
//     predicate form.
//   - Admission control via a bounded worker pool with a bounded wait queue
//     (parallel.Limiter): overload degrades into immediate HTTP 429s rather
//     than unbounded queueing and latency collapse.
//
// Endpoints: GET /query (single class), POST /plan (compound boolean
// predicate, confidence-ranked, pageable via limit/offset), GET /streams,
// GET /stats, GET /healthz, POST /drain.
//
// The server is also shard-aware: a focus-router front tier can place
// several serve processes behind one endpoint. The shard-facing surface is
// deliberately small — /streams reports each stream's ingest watermark,
// /query and /plan accept explicit pinned watermark vectors (the `at`
// parameter and PlanRequest.AtWatermarks), and /healthz distinguishes
// "not ready" from "draining" so the router can take a shard out of
// rotation before it restarts. See internal/router and OPERATIONS.md.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"focus"
	"focus/internal/parallel"
	"focus/internal/tune"
)

// QuickTuneOptions is a deliberately small parameter-search space for
// service boot: the full sweep is an offline activity (the paper retunes
// "once every few days"), and a booting server only needs a reasonable
// configuration fast. Pass it as focus.Config.TuneOptions.
func QuickTuneOptions() *tune.Options {
	o := tune.DefaultOptions()
	o.LsCandidates = []int{20}
	o.TCandidates = []float64{2.5, 3.0}
	o.KCandidates = []int{4, 16, 60}
	o.MaxSampleSightings = 800
	return &o
}

// Config tunes the server.
type Config struct {
	// Window is each stream's full ingest horizon (the recorded video the
	// background ingester works through).
	Window focus.GenOptions
	// TuneWindow, when non-zero, is a shorter window for the boot-time
	// parameter sweep; zero tunes over Window.
	TuneWindow focus.GenOptions
	// ChunkSec is the watermark granularity: how much stream time each
	// background ingest step seals. Default 5s.
	ChunkSec float64
	// IngestInterval is the real-time pause between background ingest steps;
	// 0 ingests as fast as the CPU allows.
	IngestInterval time.Duration
	// QueryWorkers bounds concurrently executing queries. Default 8.
	QueryWorkers int
	// QueueDepth bounds clients waiting for a query worker before new
	// arrivals are rejected with 429. Default 2x QueryWorkers.
	QueueDepth int
	// CacheCapacity is the result cache size in responses. Default 4096.
	CacheCapacity int
	// CacheShards is the result cache's shard count. Default 16.
	CacheShards int
	// NoBackgroundIngest starts live ingestion without spawning the
	// background ingester goroutines: the caller advances each session's
	// watermark by hand (Session.AdvanceLive). Tests use it to make cache
	// hit/miss sequences deterministic.
	NoBackgroundIngest bool
}

func (c *Config) applyDefaults() {
	if c.Window.DurationSec <= 0 {
		c.Window = focus.GenOptions{DurationSec: 240, SampleEvery: 1}
	}
	if c.Window.SampleEvery < 1 {
		c.Window.SampleEvery = 1
	}
	if c.ChunkSec <= 0 {
		c.ChunkSec = 5
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.QueryWorkers
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
}

// StreamQueryResult is one stream's share of a query response.
type StreamQueryResult struct {
	Watermark        float64 `json:"watermark"`
	Frames           []int64 `json:"frames"`
	Segments         []int64 `json:"segments"`
	ExaminedClusters int     `json:"examined_clusters"`
	MatchedClusters  int     `json:"matched_clusters"`
	GTInferences     int     `json:"gt_inferences"`
	GPUTimeMS        float64 `json:"gpu_time_ms"`
	LatencyMS        float64 `json:"latency_ms"`
	ViaOther         bool    `json:"via_other"`
}

// QueryResponse is the /query payload. Cached is true when the response was
// served from the result cache (its cost counters then describe the original
// execution; no new GT-CNN work happened). The executed leaf options are
// echoed back — with the per-stream watermarks — so a verifier can replay
// the exact execution as a direct library call.
type QueryResponse struct {
	Class       string                        `json:"class"`
	Streams     map[string]*StreamQueryResult `json:"streams"`
	TotalFrames int                           `json:"total_frames"`
	Kx          int                           `json:"kx,omitempty"`
	Start       float64                       `json:"start,omitempty"`
	End         float64                       `json:"end,omitempty"`
	MaxClusters int                           `json:"max_clusters,omitempty"`
	LatencyMS   float64                       `json:"latency_ms"`
	GPUTimeMS   float64                       `json:"gpu_time_ms"`
	Cached      bool                          `json:"cached"`
}

// ErrorResponse is the payload of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Server is the resident query service.
type Server struct {
	sys *focus.System
	cfg Config

	limiter *parallel.Limiter
	cache   *resultCache
	mux     *http.ServeMux

	ready atomic.Bool
	// draining rejects new /query and /plan work with 503 (marked with the
	// X-Focus-Draining header) while health/stats endpoints stay live, so a
	// router can take the shard out of rotation before it restarts.
	draining atomic.Bool
	// startedNS is the boot time in unix nanoseconds. Atomic because a
	// deployment exposes /healthz and /stats while Start is still tuning
	// (readiness probing), so Snapshot can race the Start-time store.
	startedNS atomic.Int64
	stopCh    chan struct{}
	stopped   sync.Once
	wg        sync.WaitGroup

	// counters
	queries     atomic.Int64
	planQueries atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	rejected    atomic.Int64
	clientErrs  atomic.Int64
	serverErrs  atomic.Int64
	ingestErrs  atomic.Int64
}

// New builds a server around a system whose streams are already registered
// (but not ingested; Start handles tuning and live ingestion).
func New(sys *focus.System, cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{
		sys:     sys,
		cfg:     cfg,
		limiter: parallel.NewLimiter(cfg.QueryWorkers, cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheCapacity, cfg.CacheShards),
		stopCh:  make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/plan", s.handlePlan)
	s.mux.HandleFunc("/streams", s.handleStreams)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/drain", s.handleDrain)
	return s
}

// DrainingHeader marks a 503 caused by draining (this shard's, or — when
// set by the router — the named shard's). Load tooling treats these as
// expected during a rolling restart, unlike any other 5xx.
const DrainingHeader = "X-Focus-Draining"

// Handler returns the HTTP handler; callers own the listener and http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start tunes every registered stream (in parallel, if none carries a
// selection yet), begins live background ingestion on each, and spawns one
// ingester goroutine per stream — the paper's one-worker-per-stream
// deployment (§5). It returns once the service is ready; ingestion keeps
// advancing watermarks until the window is exhausted or Stop is called.
func (s *Server) Start() error {
	sessions := s.sys.Sessions()
	if len(sessions) == 0 {
		return fmt.Errorf("serve: no streams registered")
	}
	tuneWindow := s.cfg.TuneWindow
	if tuneWindow.DurationSec <= 0 {
		tuneWindow = s.cfg.Window
	}
	workers := parallel.StreamWorkers(len(sessions), 0)
	err := parallel.ForEach(workers, len(sessions), func(i int) error {
		sess := sessions[i]
		if sess.Selection() == nil {
			if err := sess.Tune(tuneWindow); err != nil {
				return fmt.Errorf("serve: tuning %q: %w", sess.Name(), err)
			}
		}
		if err := sess.StartLive(s.cfg.Window); err != nil {
			return fmt.Errorf("serve: starting live ingest of %q: %w", sess.Name(), err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.startedNS.Store(time.Now().UnixNano())
	if !s.cfg.NoBackgroundIngest {
		for _, sess := range sessions {
			s.wg.Add(1)
			go s.ingestLoop(sess)
		}
	}
	s.ready.Store(true)
	return nil
}

// Stop halts the background ingesters (watermarks freeze where they are) and
// waits for them to exit. Queries keep being served against the frozen
// horizon until the caller shuts the HTTP server down.
func (s *Server) Stop() {
	s.stopped.Do(func() { close(s.stopCh) })
	s.wg.Wait()
	if s.cfg.NoBackgroundIngest {
		// No ingester goroutines own the sessions; reclaim their generators
		// here. Callers must not AdvanceLive after Stop.
		for _, sess := range s.sys.Sessions() {
			sess.StopLive()
		}
	}
}

// StartDrain takes the server out of rotation: subsequent /query and /plan
// requests are rejected with 503 (marked with DrainingHeader) while
// /streams, /stats and /healthz keep answering, and background ingestion
// keeps advancing watermarks. In-flight queries finish normally. Draining
// is one-way; restart the process to rejoin rotation.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleDrain is the admin surface of StartDrain (POST /drain): a router or
// an operator's curl takes the shard out of rotation before a restart. It
// shares the query listener and — like every endpoint of this service —
// carries no authentication, so deployments must keep the port inside the
// trust boundary (see OPERATIONS.md §6); draining is irreversible until
// the process restarts.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST to /drain"})
		return
	}
	s.StartDrain()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"draining"}`)
}

// rejectDraining writes the draining 503 and reports whether the request
// was rejected.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set(DrainingHeader, "1")
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "draining"})
	return true
}

// ingestLoop advances one stream's live ingestion chunk by chunk until the
// window is exhausted or the server stops.
func (s *Server) ingestLoop(sess *focus.Session) {
	defer s.wg.Done()
	next := s.cfg.ChunkSec
	for {
		select {
		case <-s.stopCh:
			sess.StopLive()
			return
		default:
		}
		wm, err := sess.AdvanceLive(next)
		if err != nil {
			// The stream keeps serving at its frozen watermark; surface the
			// stall through /stats rather than tearing the service down.
			s.ingestErrs.Add(1)
			return
		}
		if sess.LiveDone() {
			return
		}
		next = wm + s.cfg.ChunkSec
		if s.cfg.IngestInterval > 0 {
			select {
			case <-s.stopCh:
				sess.StopLive()
				return
			case <-time.After(s.cfg.IngestInterval):
			}
		}
	}
}

// IngestDone reports whether every stream has ingested its whole window.
func (s *Server) IngestDone() bool {
	for _, sess := range s.sys.Sessions() {
		if !sess.LiveDone() {
			return false
		}
	}
	return true
}

// queryParams are the parsed/normalized /query parameters; their canonical
// string form is the cache key prefix.
type queryParams struct {
	class   string
	streams []string
	opts    focus.QueryOptions
	// at pins named streams to explicit watermarks instead of the
	// admission-time snapshot (the `at` parameter).
	at map[string]float64
}

func parseQueryParams(r *http.Request) (*queryParams, error) {
	q := r.URL.Query()
	p := &queryParams{class: q.Get("class")}
	if p.class == "" {
		return nil, fmt.Errorf("missing required parameter: class")
	}
	if v := q.Get("streams"); v != "" {
		p.streams = NormalizeStreams(strings.Split(v, ","))
	}
	var err error
	intParam := func(name string) int {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		n, e := strconv.Atoi(v)
		if e != nil || n < 0 {
			err = fmt.Errorf("bad %s: %q", name, v)
		}
		return n
	}
	floatParam := func(name string) float64 {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		f, e := strconv.ParseFloat(v, 64)
		if e != nil || f < 0 {
			err = fmt.Errorf("bad %s: %q", name, v)
		}
		return f
	}
	p.opts.Kx = intParam("kx")
	p.opts.MaxClusters = intParam("max_clusters")
	p.opts.StartSec = floatParam("start")
	p.opts.EndSec = floatParam("end")
	if err != nil {
		return nil, err
	}
	if v := q.Get("at"); v != "" {
		if p.at, err = ParseWatermarkVector(v); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ParseWatermarkVector parses the `at` query parameter: comma-separated
// stream@seconds pairs ("auburn_c@35,jacksonh@40") pinning named streams to
// explicit ingest watermarks. A non-positive watermark pins the stream to
// the empty horizon, matching Query.AtWatermarks semantics. The router uses
// this form to pass a merged vector through to the owning shards; clients
// use it to replay an earlier response's vector for coherent reads while
// ingest advances.
func ParseWatermarkVector(v string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, pair := range strings.Split(v, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, sec, ok := strings.Cut(pair, "@")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad at entry %q: want stream@seconds", pair)
		}
		f, err := strconv.ParseFloat(sec, 64)
		if err != nil {
			return nil, fmt.Errorf("bad at entry %q: %v", pair, err)
		}
		out[name] = f
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty at parameter")
	}
	return out, nil
}

// FormatWatermarkVector renders a pinned vector in the `at` parameter form,
// streams sorted by name. Inverse of ParseWatermarkVector.
func FormatWatermarkVector(vector map[string]float64) string {
	names := make([]string, 0, len(vector))
	for n := range vector {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%g", n, vector[n])
	}
	return b.String()
}

// resolveVector resolves a request's target streams (empty = every
// registered stream) and the watermark vector the execution is pinned to:
// each stream's watermark is snapshotted at admission unless the caller
// pinned it explicitly through `pinned` (/plan paging does this to keep
// offset pages coherent while ingest advances, and the router passes
// merged vectors through). Shared by /query and /plan so the two
// endpoints can never diverge on snapshot semantics.
//
// A pin ahead of the stream's current watermark is rejected: the horizon
// is not sealed yet, so the answer would silently change as ingest
// catches up — and, worse, it would be cached under the future vector's
// key and served stale once a snapshot legitimately lands there. Pins at
// or below the watermark stay valid forever (watermarks are monotonic).
// A pin naming a stream outside the query's target set is rejected too:
// silently dropping it (a typo, a removed stream) would quietly unpin the
// read — the exact incoherence pinning exists to prevent.
func (s *Server) resolveVector(names []string, pinned map[string]float64) ([]string, map[string]float64, error) {
	if len(names) == 0 {
		for _, sess := range s.sys.Sessions() {
			names = append(names, sess.Name())
		}
	}
	vector := make(map[string]float64, len(names))
	for _, n := range names {
		sess := s.sys.Session(n)
		if sess == nil {
			return nil, nil, fmt.Errorf("unknown stream %q", n)
		}
		wm := sess.Watermark()
		if at, ok := pinned[n]; ok {
			if at > wm {
				return nil, nil, fmt.Errorf("stream %q pinned at %g beyond its ingest watermark %g", n, at, wm)
			}
			vector[n] = at
		} else {
			vector[n] = wm
		}
	}
	for n := range pinned {
		if _, ok := vector[n]; !ok {
			return nil, nil, fmt.Errorf("pinned stream %q is not among the query's streams", n)
		}
	}
	return names, vector, nil
}

// NormalizeStreams trims, deduplicates and sorts a requested stream-name
// list — the one canonical form /query and /plan both use. Deduplication
// matters for correctness (a repeated name would execute the stream twice
// and double-count aggregates); sorting matters for the cache (equivalent
// requests must render the same key).
func NormalizeStreams(names []string) []string {
	seen := make(map[string]bool, len(names))
	var out []string
	for _, name := range names {
		if name = strings.TrimSpace(name); name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// cacheKey renders the canonical key of a query pinned to a watermark
// vector. Streams appear sorted by name, so equivalent requests collide.
func cacheKey(p *queryParams, names []string, vector map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "c=%s&kx=%d&s=%g&e=%g&m=%d", p.class, p.opts.Kx,
		p.opts.StartSec, p.opts.EndSec, p.opts.MaxClusters)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s@%g", n, vector[n])
	}
	return b.String()
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) { // before the ready check: mid-boot drains stay marked
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "not ready"})
		return
	}
	p, err := parseQueryParams(r)
	if err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if !s.limiter.Acquire() {
		s.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "overloaded: query queue is full"})
		return
	}
	defer s.limiter.Release()
	s.queries.Add(1)

	// Resolve target streams and snapshot their watermarks: the consistent
	// horizon this query is pinned to, however far ingest advances while it
	// runs. Streams pinned through `at` keep their explicit watermark — the
	// cache key renders the resolved vector either way, so a pinned request
	// and a snapshot that happened to land on the same vector share one
	// entry (they are the same pure function).
	names, vector, err := s.resolveVector(p.streams, p.at)
	if err != nil {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	key := cacheKey(p, names, vector)
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		hit := *(v.(*QueryResponse)) // shallow copy: only the Cached flag differs
		hit.Cached = true
		w.Header().Set("X-Focus-Cache", "hit")
		writeJSON(w, http.StatusOK, &hit)
		return
	}

	res, err := s.sys.Query(focus.Query{
		Class:        p.class,
		Streams:      names,
		Options:      p.opts,
		AtWatermarks: vector,
	})
	if err != nil {
		if strings.Contains(err.Error(), "unknown class") {
			s.clientErrs.Add(1)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		s.serverErrs.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	resp := buildResponse(p, res, vector)
	s.cache.put(key, resp)
	s.cacheMisses.Add(1)
	w.Header().Set("X-Focus-Cache", "miss")
	writeJSON(w, http.StatusOK, resp)
}

func buildResponse(p *queryParams, res *focus.Result, vector map[string]float64) *QueryResponse {
	resp := &QueryResponse{
		Class:       p.class,
		Streams:     make(map[string]*StreamQueryResult, len(res.PerStream)),
		TotalFrames: res.TotalFrames,
		Kx:          p.opts.Kx,
		Start:       p.opts.StartSec,
		End:         p.opts.EndSec,
		MaxClusters: p.opts.MaxClusters,
		LatencyMS:   res.LatencyMS,
		GPUTimeMS:   res.GPUTimeMS,
	}
	for name, sr := range res.PerStream {
		out := &StreamQueryResult{
			Watermark:        vector[name],
			Frames:           make([]int64, len(sr.Frames)),
			Segments:         make([]int64, len(sr.Segments)),
			ExaminedClusters: sr.ExaminedClusters,
			MatchedClusters:  sr.MatchedClusters,
			GTInferences:     sr.GTInferences,
			GPUTimeMS:        sr.GPUTimeMS,
			LatencyMS:        sr.LatencyMS,
			ViaOther:         sr.ViaOther,
		}
		for i, f := range sr.Frames {
			out.Frames[i] = int64(f)
		}
		for i, seg := range sr.Segments {
			out.Segments[i] = int64(seg)
		}
		resp.Streams[name] = out
	}
	return resp
}

// StreamStatus is one entry of the /streams payload.
type StreamStatus struct {
	Name        string  `json:"name"`
	Type        string  `json:"type"`
	Location    string  `json:"location"`
	Watermark   float64 `json:"watermark"`
	WindowSec   float64 `json:"window_sec"`
	IngestDone  bool    `json:"ingest_done"`
	Frames      int     `json:"frames"`
	Sightings   int     `json:"sightings"`
	CNNInfers   int     `json:"cnn_inferences"`
	DedupRate   float64 `json:"dedup_rate"`
	Clusters    int     `json:"clusters"`
	IngestGPUMS float64 `json:"ingest_gpu_ms"`
	Model       string  `json:"model,omitempty"`
	K           int     `json:"k,omitempty"`
	T           float64 `json:"t,omitempty"`
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	var out []StreamStatus
	for _, sess := range s.sys.Sessions() {
		spec := sess.Stream().Spec
		st := sess.IngestStats()
		status := StreamStatus{
			Name:        spec.Name,
			Type:        string(spec.Type),
			Location:    spec.Location,
			Watermark:   sess.Watermark(),
			WindowSec:   s.cfg.Window.DurationSec,
			IngestDone:  sess.LiveDone(),
			Frames:      st.Frames,
			Sightings:   st.Sightings,
			CNNInfers:   st.CNNInferences,
			DedupRate:   st.DedupRate(),
			Clusters:    st.Clusters,
			IngestGPUMS: st.IngestGPUMS,
		}
		if ix := sess.Index(); ix != nil {
			status.Clusters = ix.NumClusters()
		}
		if sel := sess.Selection(); sel != nil {
			status.Model = sel.Chosen.Model.Name
			status.K = sel.Chosen.K
			status.T = sel.Chosen.T
		}
		out = append(out, status)
	}
	writeJSON(w, http.StatusOK, out)
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSec    float64            `json:"uptime_sec"`
	Ready        bool               `json:"ready"`
	Draining     bool               `json:"draining"`
	Queries      int64              `json:"queries"`
	PlanQueries  int64              `json:"plan_queries"`
	CacheHits    int64              `json:"cache_hits"`
	CacheMisses  int64              `json:"cache_misses"`
	CacheEntries int                `json:"cache_entries"`
	Rejected     int64              `json:"rejected"`
	ClientErrors int64              `json:"client_errors"`
	ServerErrors int64              `json:"server_errors"`
	IngestErrors int64              `json:"ingest_errors"`
	InFlight     int                `json:"in_flight"`
	Waiting      int                `json:"waiting"`
	Watermarks   map[string]float64 `json:"watermarks"`
	IngestGPUMS  float64            `json:"ingest_gpu_ms"`
	QueryGPUMS   float64            `json:"query_gpu_ms"`
	QueryGPUOps  int64              `json:"query_gpu_ops"`
}

// Snapshot returns the server's current counters (also served at /stats).
func (s *Server) Snapshot() Stats {
	meter := s.sys.GPUMeter()
	var uptime float64
	if ns := s.startedNS.Load(); ns > 0 {
		uptime = time.Since(time.Unix(0, ns)).Seconds()
	}
	return Stats{
		UptimeSec:    uptime,
		Ready:        s.ready.Load(),
		Draining:     s.draining.Load(),
		Queries:      s.queries.Load(),
		PlanQueries:  s.planQueries.Load(),
		CacheHits:    s.cacheHits.Load(),
		CacheMisses:  s.cacheMisses.Load(),
		CacheEntries: s.cache.len(),
		Rejected:     s.rejected.Load(),
		ClientErrors: s.clientErrs.Load(),
		ServerErrors: s.serverErrs.Load(),
		IngestErrors: s.ingestErrs.Load(),
		InFlight:     s.limiter.InFlight(),
		Waiting:      s.limiter.Waiting(),
		Watermarks:   s.sys.Watermarks(),
		IngestGPUMS:  meter.IngestMS,
		QueryGPUMS:   meter.QueryMS,
		QueryGPUOps:  meter.QueryOps,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Draining wins over "not ready": a drain issued mid-boot (a rollout
	// reversing itself) must still read as deliberate, marker and all, or
	// tooling would count it as an outage.
	if s.draining.Load() {
		// Distinguishable from "down" and from "not ready": the router keeps
		// the shard's stream ownership but stops routing queries to it.
		w.Header().Set(DrainingHeader, "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "not ready"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
