package serve

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// resultCache is a sharded LRU over fully rendered responses — single-class
// query responses keyed by (class, query options, watermark vector) and
// compound-plan responses keyed by (canonical plan, plan options, watermark
// vector). Because an execution at a fixed watermark vector is a pure
// function of its key (see query.Options MaxSealSec), entries never go
// stale in place: advancing a watermark changes the key of subsequent
// lookups, and the orphaned entries age out of the LRU. Sharding keeps the
// hot popular-query path from serializing all clients behind one mutex.
type resultCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	resp any
}

// newResultCache builds a cache holding about `capacity` responses across
// `shards` shards.
func newResultCache(capacity, shards int) *resultCache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	c := &resultCache{shards: make([]cacheShard, shards)}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].entries = make(map[string]*list.Element, per)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key string) (any, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	sh.order.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put inserts (or refreshes) a response, evicting the least recently used
// entry of the shard when full. Callers must never mutate resp afterwards.
func (c *resultCache) put(key string, resp any) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		sh.order.MoveToFront(el)
		return
	}
	sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, resp: resp})
	if sh.order.Len() > sh.capacity {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the total number of cached responses.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}
