package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"focus"
	"focus/api"
	"focus/internal/plan"
	"focus/internal/track"
)

// This file is the v1 execution core: one resolved request shape
// (v1Exec), one execution function (executeV1) shared by the POST
// /v1/query handler and both legacy shims, so the three surfaces can
// never diverge on admission, snapshotting, caching, or answer semantics.

// v1Exec is a fully resolved v1 execution: predicate compiled, paging
// normalized to (limit, offset), cursor already expanded into its frozen
// stream set and pinned vector.
type v1Exec struct {
	compiled *plan.Plan
	// trackPlan is set instead of compiled for temporal expressions
	// (tracked form): the two compile paths are mutually exclusive.
	trackPlan *track.Plan
	// streams is the requested stream set (normalized; empty = all).
	streams []string
	// pins are explicit per-stream watermark pins (nil = snapshot all).
	pins                  api.WatermarkVector
	topK, kx, maxClusters int
	start, end            float64
	limit, offset         int
	// mode is the execution mode in canonical form: "" = exact,
	// api.ModeEarlyExit = early exit. Ranked form only.
	mode string
	// ranked selects the ranked (plan) form; false executes the
	// single-class engine and answers in the frames form.
	ranked bool
	// tracked selects the tracks (temporal) form; set exactly when the
	// expression contains a temporal operator.
	tracked bool
}

// resolveV1 normalizes a wire QueryRequest into a v1Exec: validates
// fields, expands the cursor, compiles the predicate, and picks the
// response form.
func (s *Server) resolveV1(req *api.QueryRequest) (*v1Exec, *api.Error) {
	if req.Limit < 0 {
		return nil, api.Errorf(api.CodeBadRequest, "negative query parameter")
	}
	if req.Cursor != "" {
		cur, aerr := api.CursorForRequest(req)
		if aerr != nil {
			return nil, aerr
		}
		ex := &v1Exec{
			streams:     cur.Streams,
			pins:        cur.At,
			topK:        cur.TopK,
			kx:          cur.Kx,
			start:       cur.Start,
			end:         cur.End,
			maxClusters: cur.MaxClusters,
			limit:       req.Limit,
			offset:      cur.Offset,
			mode:        cur.Mode,
		}
		// The token's Form field tells a tracks continuation apart from a
		// ranked one; tokens minted before the tracks form existed carry
		// no Form and continue as ranked.
		if cur.Form == api.FormTracks {
			tp, cerr := s.sys.CompileTrackQuery(cur.Expr)
			if cerr != nil {
				return nil, api.Errorf(api.CodeBadCursor, "cursor predicate no longer compiles: %v", cerr)
			}
			ex.trackPlan, ex.tracked = tp, true
			return ex, nil
		}
		compiled, cerr := s.sys.CompilePlan(cur.Expr)
		if cerr != nil {
			return nil, api.Errorf(api.CodeBadCursor, "cursor predicate no longer compiles: %v", cerr)
		}
		ex.compiled, ex.ranked = compiled, true
		return ex, nil
	}
	if req.Expr == "" {
		return nil, api.Errorf(api.CodeBadRequest, "missing required field: expr")
	}
	if req.TopK < 0 || req.Kx < 0 || req.MaxClusters < 0 || req.Start < 0 || req.End < 0 {
		return nil, api.Errorf(api.CodeBadRequest, "negative query parameter")
	}
	// Parse before compiling so the expression's shape — temporal or
	// boolean — picks the execution path; parse errors surface with the
	// parser's offset/context detail (code bad_expr).
	ast, err := plan.Parse(req.Expr)
	if err != nil {
		return nil, api.Errorf(api.CodeBadExpr, "%v", err)
	}
	mode, aerr := api.NormalizeMode(req.Mode, req.TopK)
	if aerr != nil {
		return nil, aerr
	}
	ex := &v1Exec{
		streams:     api.NormalizeStreams(req.Streams),
		pins:        req.At,
		topK:        req.TopK,
		kx:          req.Kx,
		start:       req.Start,
		end:         req.End,
		maxClusters: req.MaxClusters,
		limit:       req.Limit,
		mode:        mode,
	}
	if plan.HasTemporal(ast) {
		if mode != "" {
			return nil, api.Errorf(api.CodeBadRequest,
				"mode %q applies to ranked executions only, not temporal (tracks-form) expressions", mode)
		}
		if req.Form != "" && req.Form != api.FormTracks {
			return nil, api.Errorf(api.CodeBadRequest,
				"temporal expressions answer in the %q form; form must be omitted or %q", api.FormTracks, api.FormTracks)
		}
		tp, err := s.sys.CompileTrackExpr(ast)
		if err != nil {
			return nil, api.Errorf(api.CodeBadExpr, "%v", err)
		}
		ex.trackPlan, ex.tracked = tp, true
		return ex, nil
	}
	if req.Form != "" && req.Form != api.FormRanked {
		return nil, api.Errorf(api.CodeBadRequest,
			"form must be omitted or %q (%q is for temporal expressions)", api.FormRanked, api.FormTracks)
	}
	compiled, err := s.sys.CompilePlanExpr(ast)
	if err != nil {
		return nil, api.Errorf(api.CodeBadExpr, "%v", err)
	}
	ex.compiled = compiled
	// A bare one-leaf plan with no ranking or paging ask is the paper's
	// single-class query: answer it in the frames form through the
	// single-class engine. Everything else — compound predicates, TopK,
	// paging, or an explicit form override — takes the ranked path.
	_, single := compiled.SingleClass()
	ex.ranked = !single || req.TopK != 0 || req.Limit != 0 || req.Form == api.FormRanked
	return ex, nil
}

// frames-form cache keys keep the pre-v1 format, so legacy-shim and v1
// requests denoting the same pure function share one entry.
func framesCacheKey(class string, ex *v1Exec, names []string, vector api.WatermarkVector) string {
	var b strings.Builder
	fmt.Fprintf(&b, "c=%s&kx=%d&s=%g&e=%g&m=%d", class, ex.kx, ex.start, ex.end, ex.maxClusters)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s@%g", n, vector[n])
	}
	return b.String()
}

// rankedCacheKey likewise keeps the pre-v1 /plan key format. The canonical
// predicate (not the request text) keys the entry, so "car&person" and
// " car & person " collide; limit/offset are deliberately absent — paging
// shares the cached execution.
func rankedCacheKey(canonical string, ex *v1Exec, names []string, vector api.WatermarkVector) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan|%s|k=%d&kx=%d&s=%g&e=%g&m=%d", canonical, ex.topK,
		ex.kx, ex.start, ex.end, ex.maxClusters)
	if ex.mode != "" {
		// Modes are disjoint pure functions, so they must be disjoint cache
		// entries. Exact mode keeps the unsuffixed pre-mode key (cache
		// compatibility with the legacy /plan shim's requests).
		fmt.Fprintf(&b, "&mode=%s", ex.mode)
	}
	for _, n := range names {
		fmt.Fprintf(&b, "|%s@%g", n, vector[n])
	}
	return b.String()
}

// executeV1 admits, resolves, executes (or serves from cache), and pages
// one v1 execution. The returned response is private to the caller (safe
// to hand to an encoder); cached state is never aliased mutably.
func (s *Server) executeV1(ex *v1Exec) (*api.QueryResponse, *api.Error) {
	if !s.limiter.Acquire() {
		s.rejected.Add(1)
		return nil, api.Errorf(api.CodeOverloaded, "overloaded: query queue is full")
	}
	defer s.limiter.Release()
	switch {
	case ex.tracked:
		s.trackQueries.Add(1)
	case ex.ranked:
		s.planQueries.Add(1)
	default:
		s.queries.Add(1)
	}

	// Resolve target streams and snapshot their watermarks: the consistent
	// horizon this query is pinned to, however far ingest advances while it
	// runs. Streams pinned through `at` (or a cursor) keep their explicit
	// watermark — the cache key renders the resolved vector either way, so
	// a pinned request and a snapshot that happened to land on the same
	// vector share one entry (they are the same pure function).
	names, vector, aerr := s.resolveVector(ex.streams, ex.pins)
	if aerr != nil {
		return nil, aerr
	}
	if ex.tracked {
		return s.executeTracks(ex, names, vector)
	}
	if !ex.ranked {
		return s.executeFrames(ex, names, vector)
	}
	return s.executeRanked(ex, names, vector)
}

// executeFrames answers a bare one-leaf plan through the single-class
// engine, in the per-stream frames form.
func (s *Server) executeFrames(ex *v1Exec, names []string, vector api.WatermarkVector) (*api.QueryResponse, *api.Error) {
	class, ok := ex.compiled.SingleClass()
	if !ok {
		return nil, api.Errorf(api.CodeInternal, "frames execution of a non-single-leaf plan")
	}
	key := framesCacheKey(class, ex, names, vector)
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		hit := *(v.(*api.QueryResponse)) // shallow copy: only the Cached flag differs
		hit.Cached = true
		return &hit, nil
	}
	res, err := s.sys.Query(focus.Query{
		Class:   class,
		Streams: names,
		Options: focus.QueryOptions{
			Kx:          ex.kx,
			StartSec:    ex.start,
			EndSec:      ex.end,
			MaxClusters: ex.maxClusters,
		},
		AtWatermarks: vector,
	})
	if err != nil {
		return nil, api.Errorf(api.CodeInternal, "%v", err)
	}
	resp := &api.QueryResponse{
		Expr:        ex.compiled.Canonical(),
		Form:        api.FormFrames,
		Watermarks:  vector,
		Streams:     make(map[string]*api.StreamResult, len(res.PerStream)),
		TotalFrames: res.TotalFrames,
		Kx:          ex.kx,
		Start:       ex.start,
		End:         ex.end,
		MaxClusters: ex.maxClusters,
		GPUTimeMS:   res.GPUTimeMS,
		LatencyMS:   res.LatencyMS,
	}
	for name, sr := range res.PerStream {
		out := &api.StreamResult{
			Watermark:        vector[name],
			Frames:           make([]int64, len(sr.Frames)),
			Segments:         make([]int64, len(sr.Segments)),
			ExaminedClusters: sr.ExaminedClusters,
			MatchedClusters:  sr.MatchedClusters,
			GTInferences:     sr.GTInferences,
			GPUTimeMS:        sr.GPUTimeMS,
			LatencyMS:        sr.LatencyMS,
			ViaOther:         sr.ViaOther,
		}
		for i, f := range sr.Frames {
			out.Frames[i] = int64(f)
		}
		for i, seg := range sr.Segments {
			out.Segments[i] = int64(seg)
		}
		resp.GTInferences += sr.GTInferences
		resp.Streams[name] = out
	}
	s.cache.put(key, resp)
	s.cacheMisses.Add(1)
	out := *resp // the cached copy stays Cached=false (it describes the execution)
	return &out, nil
}

// executeRanked answers through the plan pipeline, slicing the requested
// page out of the (cached) full ranking and minting the continuation
// cursor.
func (s *Server) executeRanked(ex *v1Exec, names []string, vector api.WatermarkVector) (*api.QueryResponse, *api.Error) {
	canonical := ex.compiled.Canonical()
	if ex.mode == api.ModeEarlyExit {
		s.earlyExitQueries.Add(1)
	}
	key := rankedCacheKey(canonical, ex, names, vector)
	var full *api.QueryResponse
	cached := false
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		full, cached = v.(*api.QueryResponse), true
	} else {
		res, err := s.sys.ExecutePlan(ex.compiled, focus.PlanOptions{
			Streams: names,
			TopK:    ex.topK,
			Leaf: focus.QueryOptions{
				Kx:          ex.kx,
				StartSec:    ex.start,
				EndSec:      ex.end,
				MaxClusters: ex.maxClusters,
			},
			AtWatermarks: vector,
			EarlyExit:    ex.mode == api.ModeEarlyExit,
		})
		if err != nil {
			return nil, api.Errorf(api.CodeInternal, "%v", err)
		}
		full = &api.QueryResponse{
			Expr:         canonical,
			Form:         api.FormRanked,
			Watermarks:   vector,
			Items:        make([]api.Item, len(res.Items)),
			TotalItems:   len(res.Items),
			TopK:         ex.topK,
			Kx:           ex.kx,
			Start:        ex.start,
			End:          ex.end,
			MaxClusters:  ex.maxClusters,
			Mode:         ex.mode,
			GTInferences: res.Stats.GTInferences,
			GPUTimeMS:    res.Stats.GPUTimeMS,
			LatencyMS:    res.Stats.LatencyMS,
		}
		for i, it := range res.Items {
			full.Items[i] = api.Item{
				Stream:  it.Stream,
				Frame:   int64(it.Frame),
				TimeSec: it.TimeSec,
				Segment: int64(it.Segment),
				Score:   it.Score,
			}
		}
		s.cache.put(key, full)
		s.cacheMisses.Add(1)
	}
	out := *full // shallow copy; Items re-sliced below, never mutated
	out.Cached = cached
	out.Items = api.PageItems(full.Items, ex.limit, ex.offset)
	out.Cursor = api.ContinuationToken(api.Cursor{
		Expr:        canonical,
		Streams:     names,
		TopK:        ex.topK,
		Kx:          ex.kx,
		Start:       ex.start,
		End:         ex.end,
		MaxClusters: ex.maxClusters,
		At:          vector,
		Mode:        ex.mode,
	}, ex.limit, ex.offset, len(out.Items), full.TotalItems)
	return &out, nil
}

// tracksCacheKey mirrors rankedCacheKey with a distinct prefix: a tracks
// execution and a ranked execution of the same canonical predicate are
// different pure functions (they cannot share an expr — temporal operators
// decide the path — but the keyspace separation keeps that invariant out
// of the cache's hands).
func tracksCacheKey(canonical string, ex *v1Exec, names []string, vector api.WatermarkVector) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tracks|%s|k=%d&kx=%d&s=%g&e=%g&m=%d", canonical, ex.topK,
		ex.kx, ex.start, ex.end, ex.maxClusters)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s@%g", n, vector[n])
	}
	return b.String()
}

// executeTracks answers a temporal expression through the track pipeline,
// slicing the requested page out of the (cached) full ranking and minting
// the continuation cursor — the tracks-form mirror of executeRanked.
func (s *Server) executeTracks(ex *v1Exec, names []string, vector api.WatermarkVector) (*api.QueryResponse, *api.Error) {
	canonical := ex.trackPlan.Canonical()
	key := tracksCacheKey(canonical, ex, names, vector)
	var full *api.QueryResponse
	cached := false
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		full, cached = v.(*api.QueryResponse), true
	} else {
		res, err := s.sys.ExecuteTrackQuery(ex.trackPlan, focus.TrackOptions{
			Streams: names,
			TopK:    ex.topK,
			Leaf: focus.QueryOptions{
				Kx:          ex.kx,
				StartSec:    ex.start,
				EndSec:      ex.end,
				MaxClusters: ex.maxClusters,
			},
			AtWatermarks: vector,
		})
		if err != nil {
			return nil, api.Errorf(api.CodeInternal, "%v", err)
		}
		full = &api.QueryResponse{
			Expr:         canonical,
			Form:         api.FormTracks,
			Watermarks:   vector,
			Tracks:       make([]api.TrackItem, len(res.Items)),
			TotalItems:   len(res.Items),
			TopK:         ex.topK,
			Kx:           ex.kx,
			Start:        ex.start,
			End:          ex.end,
			MaxClusters:  ex.maxClusters,
			GTInferences: res.Stats.GTInferences,
			GPUTimeMS:    res.Stats.GPUTimeMS,
			LatencyMS:    res.Stats.LatencyMS,
		}
		for i, it := range res.Items {
			full.Tracks[i] = api.TrackItem{
				Stream:     it.Stream,
				Track:      it.Track,
				Object:     int64(it.Object),
				StartFrame: int64(it.StartFrame),
				EndFrame:   int64(it.EndFrame),
				StartSec:   it.StartSec,
				EndSec:     it.EndSec,
				Sightings:  it.Sightings,
				Score:      it.Score,
			}
		}
		s.cache.put(key, full)
		s.cacheMisses.Add(1)
	}
	out := *full // shallow copy; Tracks re-sliced below, never mutated
	out.Cached = cached
	out.Tracks = api.PageTracks(full.Tracks, ex.limit, ex.offset)
	out.Cursor = api.ContinuationToken(api.Cursor{
		Expr:        canonical,
		Streams:     names,
		TopK:        ex.topK,
		Kx:          ex.kx,
		Start:       ex.start,
		End:         ex.end,
		MaxClusters: ex.maxClusters,
		At:          vector,
		Form:        api.FormTracks,
	}, ex.limit, ex.offset, len(out.Tracks), full.TotalItems)
	return &out, nil
}

// countV1Error mirrors the error onto the server's counters: overload
// rejections, client errors, and server errors each have a gauge;
// deliberate unavailability (draining, not ready) is state, not an error,
// and is not counted.
func (s *Server) countV1Error(e *api.Error) {
	switch e.HTTPStatus() {
	case http.StatusBadRequest:
		s.clientErrs.Add(1)
	case http.StatusInternalServerError:
		s.serverErrs.Add(1)
	}
	// Overloaded is counted at the rejection site (s.rejected) so the
	// limiter path and this path cannot double-count.
}

// overloadedRetryAfter is the Retry-After hint sent with admission-control
// rejections, in seconds. One second comfortably outlasts a queue-depth
// burst; the client's jittered backoff spreads the comeback regardless.
const overloadedRetryAfter = "1"

// writeV1Error writes the structured error envelope at the code's status.
// Overload rejections carry a Retry-After header so well-behaved clients
// (including this repo's client package) come back on the server's terms.
func (s *Server) writeV1Error(w http.ResponseWriter, e *api.Error) {
	s.countV1Error(e)
	if e.Code == api.CodeOverloaded {
		w.Header().Set("Retry-After", overloadedRetryAfter)
	}
	writeJSON(w, e.HTTPStatus(), api.Envelope{Err: e})
}

func cacheHeaderValue(cached bool) string {
	if cached {
		return "hit"
	}
	return "miss"
}

// handleV1Query is POST /v1/query: the primary query surface.
func (s *Server) handleV1Query(w http.ResponseWriter, r *http.Request) {
	// Draining is checked before readiness: mid-boot drains must read as
	// deliberate.
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{Err: api.Errorf(api.CodeDraining, "draining")})
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{Err: api.Errorf(api.CodeNotReady, "not ready")})
		return
	}
	if r.Method != http.MethodPost {
		s.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, api.Envelope{
			Err: api.Errorf(api.CodeBadRequest, "POST a JSON body to %s", api.PathQuery)})
		return
	}
	var req api.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad %s body: %v", api.PathQuery, err))
		return
	}
	ex, aerr := s.resolveV1(&req)
	if aerr != nil {
		s.writeV1Error(w, aerr)
		return
	}
	resp, aerr := s.executeV1(ex)
	if aerr != nil {
		s.writeV1Error(w, aerr)
		return
	}
	w.Header().Set("X-Focus-Cache", cacheHeaderValue(resp.Cached))
	writeJSON(w, http.StatusOK, resp)
}
