package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"focus"
	"focus/api"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

// testService is an in-process focus-serve with manually advanced ingest, so
// cache hit/miss sequences are deterministic.
type testService struct {
	sys  *focus.System
	srv  *serve.Server
	http *httptest.Server
}

func bootTestService(t testing.TB, fcfg focus.Config, scfg serve.Config, streams ...string) *testService {
	t.Helper()
	if fcfg.Targets == (focus.Targets{}) {
		fcfg.Targets = focus.Targets{Recall: 0.7, Precision: 0.7}
	}
	if fcfg.TuneOptions == nil {
		fcfg.TuneOptions = serve.QuickTuneOptions()
	}
	sys, err := focus.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	for _, name := range streams {
		if _, err := sys.AddTable1Stream(name); err != nil {
			t.Fatal(err)
		}
	}
	if scfg.Window.DurationSec <= 0 {
		scfg.Window = focus.GenOptions{DurationSec: 60, SampleEvery: 1}
	}
	if scfg.TuneWindow.DurationSec <= 0 {
		scfg.TuneWindow = focus.GenOptions{DurationSec: 30, SampleEvery: 1}
	}
	srv := serve.New(sys, scfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testService{sys: sys, srv: srv, http: ts}
}

// advanceAll moves every stream's watermark to toSec.
func (s *testService) advanceAll(t testing.TB, toSec float64) {
	t.Helper()
	for _, sess := range s.sys.Sessions() {
		if _, err := sess.AdvanceLive(toSec); err != nil {
			t.Fatal(err)
		}
	}
}

func (s *testService) getQuery(t testing.TB, params string) (*serve.QueryResponse, *http.Response) {
	t.Helper()
	resp, err := http.Get(s.http.URL + "/query?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query?%s: status %d", params, resp.StatusCode)
	}
	var qr serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr, resp
}

// TestResultCacheHitAndInvalidation is the satellite contract: a repeat
// query at an unchanged watermark is served from cache with zero additional
// GT-CNN GPU time; advancing the watermark invalidates (the key changes),
// forcing a re-execution whose answer matches a direct library query.
func TestResultCacheHitAndInvalidation(t *testing.T) {
	svc := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c", "jacksonh")
	verify := loadgen.NewDirectVerifier(svc.sys)

	svc.advanceAll(t, 20)
	miss1, resp := svc.getQuery(t, "class=car")
	if miss1.Cached || resp.Header.Get("X-Focus-Cache") != "miss" {
		t.Fatalf("first query should miss, got cached=%v header=%q", miss1.Cached, resp.Header.Get("X-Focus-Cache"))
	}
	for name, sr := range miss1.Streams {
		if sr.Watermark != 20 {
			t.Errorf("stream %s served watermark %v, want 20", name, sr.Watermark)
		}
	}

	gpuBefore := svc.sys.GPUMeter()
	hit, resp := svc.getQuery(t, "class=car")
	if !hit.Cached || resp.Header.Get("X-Focus-Cache") != "hit" {
		t.Fatalf("repeat query should hit, got cached=%v header=%q", hit.Cached, resp.Header.Get("X-Focus-Cache"))
	}
	if gpuAfter := svc.sys.GPUMeter(); gpuAfter.QueryMS != gpuBefore.QueryMS {
		t.Errorf("cache hit consumed GT-CNN time: %v -> %v GPU-ms", gpuBefore.QueryMS, gpuAfter.QueryMS)
	}
	if hit.TotalFrames != miss1.TotalFrames {
		t.Errorf("hit served %d frames, miss served %d", hit.TotalFrames, miss1.TotalFrames)
	}

	// Advancing the watermark must invalidate: same request misses, answers
	// for the new horizon, and matches a direct query bit for bit.
	svc.advanceAll(t, 40)
	miss2, _ := svc.getQuery(t, "class=car")
	if miss2.Cached {
		t.Fatal("query after watermark advance should miss the cache")
	}
	for name, sr := range miss2.Streams {
		if sr.Watermark != 40 {
			t.Errorf("stream %s served watermark %v, want 40", name, sr.Watermark)
		}
	}
	if miss2.TotalFrames < miss1.TotalFrames {
		t.Errorf("larger horizon lost frames: %d at 20s, %d at 40s", miss1.TotalFrames, miss2.TotalFrames)
	}
	if err := verify(asAPIResponse(miss2)); err != nil {
		t.Errorf("re-verified result diverges from direct query: %v", err)
	}
	if hit2, _ := svc.getQuery(t, "class=car"); !hit2.Cached {
		t.Error("repeat query at the new watermark should hit")
	}

	stats := svc.srv.Snapshot()
	if stats.CacheHits != 2 || stats.CacheMisses != 2 {
		t.Errorf("stats: %d hits / %d misses, want 2/2", stats.CacheHits, stats.CacheMisses)
	}
}

// asAPIResponse lifts a legacy /query response into the v1 frames form,
// the shape the served-vs-direct verifier consumes — the same translation
// an unmigrated client's traffic goes through in loadgen's legacy mix.
func asAPIResponse(qr *serve.QueryResponse) *api.QueryResponse {
	out := &api.QueryResponse{
		Expr:        qr.Class,
		Form:        api.FormFrames,
		Watermarks:  make(api.WatermarkVector, len(qr.Streams)),
		Streams:     qr.Streams,
		TotalFrames: qr.TotalFrames,
		Kx:          qr.Kx,
		Start:       qr.Start,
		End:         qr.End,
		MaxClusters: qr.MaxClusters,
		Cached:      qr.Cached,
	}
	for name, sr := range qr.Streams {
		out.Watermarks[name] = sr.Watermark
	}
	return out
}

// TestAdmissionControlRejectsOverload saturates a one-worker, zero-queue
// server with slow (GPU-paced) cold queries: the overflow must come back as
// 429s, never as hangs or 5xx.
func TestAdmissionControlRejectsOverload(t *testing.T) {
	svc := bootTestService(t,
		focus.Config{GPUPace: 2 * time.Millisecond},
		serve.Config{NoBackgroundIngest: true, QueryWorkers: 1, QueueDepth: 0},
		"auburn_c")
	svc.advanceAll(t, 60)

	classes := []string{"car", "person", "truck", "bus", "van", "dog", "bicycle", "motorcycle"}
	codes := make([]int, len(classes))
	var wg sync.WaitGroup
	for i, class := range classes {
		wg.Add(1)
		go func(i int, class string) {
			defer wg.Done()
			resp, err := http.Get(svc.http.URL + "/query?class=" + class)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i, class)
	}
	wg.Wait()

	ok, rejected := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("class %s: unexpected status %d", classes[i], code)
		}
	}
	if ok == 0 {
		t.Error("no query succeeded under overload")
	}
	if rejected == 0 {
		t.Error("no query was rejected: admission control did not engage")
	}
	if stats := svc.srv.Snapshot(); stats.Rejected != int64(rejected) {
		t.Errorf("stats counted %d rejections, clients saw %d", stats.Rejected, rejected)
	}
}

// TestEndpointsAndValidation covers /healthz, /streams, /stats and the
// /query error taxonomy.
func TestEndpointsAndValidation(t *testing.T) {
	svc := bootTestService(t, focus.Config{},
		serve.Config{NoBackgroundIngest: true}, "auburn_c", "msnbc")
	svc.advanceAll(t, 10)

	resp, err := http.Get(svc.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(svc.http.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	var streams []serve.StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&streams); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(streams) != 2 {
		t.Fatalf("/streams returned %d entries, want 2", len(streams))
	}
	for _, st := range streams {
		if st.Watermark != 10 {
			t.Errorf("stream %s watermark %v, want 10", st.Name, st.Watermark)
		}
		if st.Model == "" {
			t.Errorf("stream %s missing chosen model", st.Name)
		}
	}

	resp, err = http.Get(svc.http.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !stats.Ready || len(stats.Watermarks) != 2 {
		t.Errorf("/stats: ready=%v watermarks=%v", stats.Ready, stats.Watermarks)
	}

	for _, bad := range []string{
		"",                       // missing class
		"class=no_such_class",    // unknown class
		"class=car&streams=nope", // unknown stream
		"class=car&kx=-3",        // bad kx
		"class=car&start=x",      // bad float
	} {
		resp, err := http.Get(svc.http.URL + "/query?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		var e serve.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d (%s), want 400", bad, resp.StatusCode, e.Error)
		}
	}
}

// TestServeUnderConcurrentLoadWithBackgroundIngest is the in-repo miniature
// of the CI smoke gate: background ingesters advancing watermarks while
// loadgen clients hammer /query, every response verified against a direct
// library query at its watermark vector. Run under -race this is the
// concurrent Query/Ingest satellite test.
func TestServeUnderConcurrentLoadWithBackgroundIngest(t *testing.T) {
	fcfg := focus.Config{Targets: focus.Targets{Recall: 0.7, Precision: 0.7}, TuneOptions: serve.QuickTuneOptions()}
	sys, err := focus.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, name := range []string{"auburn_c", "jacksonh"} {
		if _, err := sys.AddTable1Stream(name); err != nil {
			t.Fatal(err)
		}
	}
	srv := serve.New(sys, serve.Config{
		Window:         focus.GenOptions{DurationSec: 60, SampleEvery: 1},
		TuneWindow:     focus.GenOptions{DurationSec: 30, SampleEvery: 1},
		ChunkSec:       4,
		IngestInterval: 50 * time.Millisecond,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     ts.URL,
		Clients:     8,
		Duration:    3 * time.Second,
		Classes:     []string{"car", "person", "truck", "bus"},
		VerifyEvery: 5,
		Verifier:    loadgen.NewDirectVerifier(sys),
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures := rep.Failures(); len(failures) > 0 {
		t.Fatalf("load run failed: %v", failures)
	}
	if rep.OK == 0 || rep.Verified == 0 {
		t.Fatalf("no verified traffic: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Error("popular repeat queries never hit the cache")
	}
	t.Logf("served %d requests (%.0f rps), %d cache hits, %d verified, p99 %.1fms",
		rep.Requests, rep.ThroughputRPS, rep.CacheHits, rep.Verified, rep.P99MS)
}
