// Package subscribe is the standing-query registry behind POST
// /v1/subscribe: it turns the one-shot query engine into an incremental
// one by re-evaluating each subscribed plan as ingest watermarks advance
// and broadcasting only the delta between consecutive answers.
//
// The registry's job is cost sharing and delivery discipline, in three
// mechanisms:
//
//   - Coalescing: subscriptions are grouped by (canonical plan, options,
//     stream set). Each group owns one evaluator goroutine and evaluates
//     once per watermark advance however many subscribers it has — kicks
//     arriving during an evaluation collapse into a single follow-up run.
//     Together with the engine-level GT-verdict cache (which makes each
//     re-evaluation pay GT-CNN cost only for clusters sealed since the
//     last one), N overlapping subscribers cost ~1 incremental evaluation
//     per advance.
//   - Delta purity: every broadcast delta is the exact edit between two
//     full answers of the same pure function at two vectors, so applying
//     a subscription's deltas in order from genesis reconstructs the
//     one-shot answer at the last delivered vector bit-identically, and a
//     resumed subscription (Options.From) continues gap-free and
//     duplicate-free from wherever the previous stream ended.
//   - Bounded delivery: each subscriber owns a bounded event queue. A
//     consumer that falls behind is dropped with a typed terminal event
//     carrying the vector through which delivery is complete — never a
//     skipped or partial delta — and can resume from there.
//
// The package is engine-agnostic: evaluation is injected as an Eval
// closure (the serve layer passes its cache-sharing executor), so the
// registry's lifecycle, coalescing and backpressure behavior is testable
// against fake evaluators.
package subscribe

import (
	"fmt"
	"sync"
	"sync/atomic"

	"focus/api"
)

// Eval evaluates the subscribed query pinned at the given watermark
// vector and returns the full (unpaged) answer. A nil vector snapshots
// the current watermarks; the response echoes the vector it executed at.
// Implementations must be pure functions of (plan, options, vector).
type Eval func(pins api.WatermarkVector) (*api.QueryResponse, error)

// DefaultQueue is the per-subscriber event buffer used when Options.Queue
// is zero: deep enough that a consumer reading at network speed never
// drops, small enough that an abandoned consumer is shed quickly.
const DefaultQueue = 64

// Options describes one subscription joining the registry.
type Options struct {
	// Key identifies the coalescing group: every subscription with the
	// same key shares one evaluation per advance. Callers must derive it
	// from exactly the tuple that makes answers a pure function
	// (canonical plan, options, resolved stream set) — the registry
	// treats it as opaque.
	Key string
	// Form is api.FormRanked or api.FormTracks: which delta payload the
	// group's answers carry.
	Form string
	// Streams is the resolved target stream set, sorted. It defines the
	// genesis vector (every stream at 0) and the key set From must cover.
	Streams []string
	// Queue bounds the subscriber's event buffer; 0 means DefaultQueue.
	Queue int
	// Eval evaluates the group's query. Only the first subscription of a
	// group installs it; later joins must pass an equivalent closure.
	Eval Eval
	// From resumes from the vector a previous delta stream was delivered
	// through; nil subscribes from genesis. Must cover exactly Streams.
	From api.WatermarkVector
}

// Stats is a snapshot of the registry's counters.
type Stats struct {
	// Subscriptions counts subscriptions ever accepted; Active the ones
	// currently attached; Groups the live coalescing groups.
	Subscriptions int64
	Active        int64
	Groups        int
	// DeltaEvents counts delta events enqueued across all subscribers;
	// Drops subscribers shed for falling behind their queue.
	DeltaEvents int64
	Drops       int64
	// Evals counts coalesced evaluations (including per-subscriber
	// resume evaluations); EvalErrors the ones that failed.
	Evals      int64
	EvalErrors int64
}

// Registry coalesces subscriptions into per-plan groups and fans deltas
// out to their subscribers. One registry serves one focus-serve process.
type Registry struct {
	mu        sync.Mutex
	groups    map[string]*group
	draining  bool
	completed bool

	subscriptions atomic.Int64
	active        atomic.Int64
	deltaEvents   atomic.Int64
	drops         atomic.Int64
	evals         atomic.Int64
	evalErrs      atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[string]*group)}
}

// group is one coalescing unit: all subscriptions of one (plan, options,
// streams) tuple, one evaluator goroutine, one shared last-answer state.
type group struct {
	reg     *Registry
	key     string
	form    string
	streams []string
	eval    Eval
	// kick coalesces watermark-advance notifications: capacity 1, closed
	// (under reg.mu) when the group is removed.
	kick chan struct{}

	mu     sync.Mutex
	state  *groupState
	subs   map[*Subscription]bool
	closed bool
}

// groupState is one full evaluated answer.
type groupState struct {
	vector api.WatermarkVector
	items  []api.Item
	tracks []api.TrackItem
	cost   evalCost
}

// Subscription is one subscriber's handle: a bounded event stream plus a
// terminal event. Events are delivered in order; after the events channel
// closes, Terminal reports how the stream ended.
type Subscription struct {
	g      *group
	events chan *api.SubscribeEvent
	// The fields below are guarded by g.mu on the writer side; readers
	// may touch term only after events is closed (the close provides the
	// happens-before edge).
	term   *api.SubscribeEvent
	lastTo api.WatermarkVector
	closed bool
}

// Events returns the subscriber's event stream. The channel closes when
// the subscription ends for any reason; Terminal then reports why.
func (s *Subscription) Events() <-chan *api.SubscribeEvent { return s.events }

// Terminal returns the typed terminal event (EventDrop or EventBye), or
// nil when the subscription was closed by the consumer itself. Valid only
// after Events is closed.
func (s *Subscription) Terminal() *api.SubscribeEvent { return s.term }

// Close detaches the subscriber (idempotent): the consumer went away.
// Its group is garbage-collected when the last subscriber leaves.
func (s *Subscription) Close() {
	g := s.g
	g.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.events)
		g.reg.active.Add(-1)
	}
	delete(g.subs, s)
	empty := len(g.subs) == 0
	g.mu.Unlock()
	if empty {
		g.reg.removeGroup(g)
	}
}

// Subscribe attaches a subscriber, creating its coalescing group on first
// use. The event stream always opens with a catch-up delta (from From, or
// from genesis, to the group's current answer — empty with From == To
// when nothing has advanced past the resume point); subsequent advances
// broadcast incrementally. Returns a typed error when the registry is
// draining, when From is malformed, or when the catch-up evaluation fails
// (e.g. From pins ahead of the restarted server's horizon).
func (r *Registry) Subscribe(o Options) (*Subscription, error) {
	if o.Queue <= 0 {
		o.Queue = DefaultQueue
	}
	if len(o.From) > 0 {
		if len(o.From) != len(o.Streams) {
			return nil, fmt.Errorf("resume vector covers %d streams, subscription has %d", len(o.From), len(o.Streams))
		}
		for _, n := range o.Streams {
			if _, ok := o.From[n]; !ok {
				return nil, fmt.Errorf("resume vector is missing stream %q", n)
			}
		}
	}
	for {
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry is draining")
		}
		g, ok := r.groups[o.Key]
		if !ok {
			g = &group{
				reg:     r,
				key:     o.Key,
				form:    o.Form,
				streams: o.Streams,
				eval:    o.Eval,
				kick:    make(chan struct{}, 1),
				subs:    make(map[*Subscription]bool),
			}
			r.groups[o.Key] = g
			go g.run()
		}
		completed := r.completed
		r.mu.Unlock()

		sub, retry, err := g.join(o, completed)
		if err != nil {
			return nil, err
		}
		if retry {
			// The group went terminal between the map lookup and the join
			// (Complete or the last subscriber leaving won the race); a
			// fresh group serves the join.
			continue
		}
		return sub, nil
	}
}

// join attaches one subscriber to the group: ensures the group has an
// evaluated answer, enqueues the catch-up delta, and (on a completed
// registry) terminates immediately after it.
func (g *group) join(o Options, completed bool) (*Subscription, bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, true, nil
	}
	if g.state == nil {
		if err := g.evaluateLocked(); err != nil {
			return nil, false, err
		}
	}
	from := o.From
	if len(from) == 0 {
		from = genesisVector(o.Streams)
	}
	sub := &Subscription{g: g, events: make(chan *api.SubscribeEvent, o.Queue), lastTo: from}
	// The stream always opens with a catch-up delta, empty (From == To, no
	// edits) when nothing advanced past From: subscribers — and the
	// router's fan-in, which cannot stamp merged answer sizes until every
	// shard leg has stated its own — start from a declared size and vector
	// rather than inferring them.
	prev := g.state
	if !api.VectorsEqual(from, g.state.vector) {
		prev = &groupState{vector: from}
		if !genesis(from) {
			resp, err := g.eval(from.Clone())
			if err != nil {
				g.reg.evalErrs.Add(1)
				return nil, false, err
			}
			g.reg.evals.Add(1)
			prev = stateOf(resp)
		}
	}
	g.subs[sub] = true
	g.reg.subscriptions.Add(1)
	g.reg.active.Add(1)
	g.enqueueLocked(sub, deltaEvent(g.form, prev, g.state, g.state.cost))
	if completed {
		g.terminalLocked(sub, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonComplete})
	}
	return sub, false, nil
}

// run is the group's evaluator goroutine: one evaluation per coalesced
// kick, broadcasting the delta to every subscriber. It exits when the
// group is removed (kick closed).
func (g *group) run() {
	for range g.kick {
		g.mu.Lock()
		if !g.closed && len(g.subs) > 0 {
			// Evaluation errors are counted inside evaluateLocked; the
			// group retries on the next advance, subscribers just see no
			// delta for this one.
			_ = g.evaluateLocked()
		}
		g.mu.Unlock()
	}
}

// evaluateLocked evaluates the group's query at the current watermark
// snapshot and broadcasts the delta from the previous answer (none on the
// first evaluation, or when the vector has not advanced).
func (g *group) evaluateLocked() error {
	resp, err := g.eval(nil)
	if err != nil {
		g.reg.evalErrs.Add(1)
		return err
	}
	g.reg.evals.Add(1)
	next := stateOf(resp)
	prev := g.state
	g.state = next
	if prev == nil || api.VectorsEqual(prev.vector, next.vector) {
		return nil
	}
	ev := deltaEvent(g.form, prev, next, next.cost)
	for sub := range g.subs {
		g.enqueueLocked(sub, ev)
	}
	return nil
}

// enqueueLocked delivers one event to one subscriber, or sheds the
// subscriber with a typed drop if its queue is full. The queue is FIFO,
// so everything before the drop is delivered intact: the Resume vector is
// exactly the To of the last enqueued delta.
func (g *group) enqueueLocked(sub *Subscription, ev *api.SubscribeEvent) {
	if sub.closed {
		return
	}
	select {
	case sub.events <- ev:
		if ev.Type == api.EventDelta {
			sub.lastTo = ev.Delta.To
			g.reg.deltaEvents.Add(1)
		}
	default:
		g.reg.drops.Add(1)
		g.terminalLocked(sub, &api.SubscribeEvent{
			V: api.SSEVersion, Type: api.EventDrop,
			Reason: api.ReasonSlowConsumer, Resume: sub.lastTo.Clone(),
		})
	}
}

// terminalLocked ends one subscription with a typed terminal event and
// detaches it from the group.
func (g *group) terminalLocked(sub *Subscription, term *api.SubscribeEvent) {
	if sub.closed {
		return
	}
	sub.closed = true
	sub.term = term
	close(sub.events)
	delete(g.subs, sub)
	g.reg.active.Add(-1)
}

// removeGroup garbage-collects a group that may have lost its last
// subscriber; re-checked under both locks because a new subscriber can
// join between the emptiness observation and this call.
func (r *Registry) removeGroup(g *group) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.groups[g.key] != g {
		return
	}
	g.mu.Lock()
	empty := len(g.subs) == 0
	if empty {
		g.closed = true
	}
	g.mu.Unlock()
	if empty {
		delete(r.groups, g.key)
		close(g.kick)
	}
}

// Kick notifies every group that watermarks advanced: each schedules (at
// most) one evaluation, coalescing with any already pending. Called from
// the ingester goroutines; never blocks.
func (r *Registry) Kick() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.groups {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
}

// Pump evaluates every group synchronously: deltas for any watermark
// progress are enqueued before it returns. Deterministic tests use it in
// place of the asynchronous Kick.
func (r *Registry) Pump() {
	for _, g := range r.snapshot() {
		g.mu.Lock()
		if !g.closed && len(g.subs) > 0 {
			_ = g.evaluateLocked()
		}
		g.mu.Unlock()
	}
}

// Complete ends every subscription because ingest finished: each group
// evaluates once more at the final (frozen) vector, broadcasts the last
// delta, and terminates its subscribers with EventBye/ReasonComplete.
// Later subscribers still get their catch-up delta against the final
// answer, immediately followed by the same terminal event.
func (r *Registry) Complete() {
	r.mu.Lock()
	r.completed = true
	groups := make([]*group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	r.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		if !g.closed && len(g.subs) > 0 {
			_ = g.evaluateLocked()
		}
		for sub := range g.subs {
			g.terminalLocked(sub, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonComplete})
		}
		g.mu.Unlock()
	}
}

// CloseStreams ends every subscription whose stream set touches any of
// the named streams, with a typed EventBye carrying the given reason —
// the handoff path uses it to end standing queries on a stream that moved
// to another shard (api.ReasonMoved). Untouched groups keep streaming,
// and new subscriptions (which will resolve against the post-handoff
// stream set) are still accepted.
func (r *Registry) CloseStreams(reason string, names ...string) {
	match := make(map[string]bool, len(names))
	for _, n := range names {
		match[n] = true
	}
	r.mu.Lock()
	var groups []*group
	for key, g := range r.groups {
		touches := false
		for _, st := range g.streams {
			if match[st] {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		groups = append(groups, g)
		delete(r.groups, key)
		close(g.kick)
	}
	r.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		g.closed = true
		for sub := range g.subs {
			g.terminalLocked(sub, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: reason})
		}
		g.mu.Unlock()
	}
}

// Drain ends every subscription because the server is leaving rotation:
// subscribers get EventBye/ReasonDraining (no final evaluation — the
// point of draining is to stop work), and new subscriptions are refused.
func (r *Registry) Drain() {
	r.mu.Lock()
	r.draining = true
	groups := make([]*group, 0, len(r.groups))
	for key, g := range r.groups {
		groups = append(groups, g)
		delete(r.groups, key)
		close(g.kick)
	}
	r.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		g.closed = true
		for sub := range g.subs {
			g.terminalLocked(sub, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonDraining})
		}
		g.mu.Unlock()
	}
}

// Stats snapshots the registry's counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	groups := len(r.groups)
	r.mu.Unlock()
	return Stats{
		Subscriptions: r.subscriptions.Load(),
		Active:        r.active.Load(),
		Groups:        groups,
		DeltaEvents:   r.deltaEvents.Load(),
		Drops:         r.drops.Load(),
		Evals:         r.evals.Load(),
		EvalErrors:    r.evalErrs.Load(),
	}
}

func (r *Registry) snapshot() []*group {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*group, 0, len(r.groups))
	for _, g := range r.groups {
		out = append(out, g)
	}
	return out
}

// genesisVector is the empty horizon: every stream at 0.
func genesisVector(streams []string) api.WatermarkVector {
	v := make(api.WatermarkVector, len(streams))
	for _, n := range streams {
		v[n] = 0
	}
	return v
}

// genesis reports whether the vector pins only empty horizons.
func genesis(v api.WatermarkVector) bool {
	for _, at := range v {
		if at > 0 {
			return false
		}
	}
	return true
}

// stateOf captures a full evaluated answer.
func stateOf(resp *api.QueryResponse) *groupState {
	return &groupState{
		vector: resp.Watermarks,
		items:  resp.Items,
		tracks: resp.Tracks,
		cost:   evalCost{gt: resp.GTInferences, gpuMS: resp.GPUTimeMS},
	}
}

// evalCost is the cost of the evaluation that produced an answer,
// attributed to the delta it yields.
type evalCost struct {
	gt    int
	gpuMS float64
}

// deltaEvent builds the delta event editing prev into next.
func deltaEvent(form string, prev, next *groupState, cost evalCost) *api.SubscribeEvent {
	d := &api.Delta{
		From:         prev.vector.Clone(),
		To:           next.vector.Clone(),
		GTInferences: cost.gt,
		GPUTimeMS:    cost.gpuMS,
	}
	if form == api.FormTracks {
		d.Tracks, d.RemovedTracks = api.DiffTracks(prev.tracks, next.tracks)
		d.TotalItems = len(next.tracks)
	} else {
		d.Items, d.RemovedItems = api.DiffItems(prev.items, next.items)
		d.TotalItems = len(next.items)
	}
	return &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: d}
}
