package subscribe

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"focus/api"
)

// fakeWorld is a deterministic stand-in for the query engine: a mutable
// watermark vector plus a pure answer function of the pinned vector. Its
// answers are deliberately non-monotone — items rescore and retract as
// watermarks advance — so deltas must be real edit scripts, not appends.
type fakeWorld struct {
	mu    sync.Mutex
	wm    api.WatermarkVector
	evals atomic.Int64
	fail  atomic.Bool
}

func newFakeWorld(streams ...string) *fakeWorld {
	w := &fakeWorld{wm: make(api.WatermarkVector, len(streams))}
	for _, s := range streams {
		w.wm[s] = 0
	}
	return w
}

func (w *fakeWorld) advance(stream string, to float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wm[stream] = to
}

func (w *fakeWorld) vector() api.WatermarkVector {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wm.Clone()
}

// itemsAt is the pure ranked answer at a vector. Item t exists while
// (t+wm)%7 != 0 (retraction) and item 1 rescores on every advance.
func itemsAt(v api.WatermarkVector) []api.Item {
	var out []api.Item
	for stream, wm := range v {
		for t := 1; t <= int(wm); t++ {
			if (t+int(wm))%7 == 0 {
				continue
			}
			score := float64((t*7)%5) + 1
			if t == 1 {
				score += wm / 1024
			}
			out = append(out, api.Item{
				Stream: stream, Frame: int64(t * 30), TimeSec: float64(t),
				Segment: int64(t), Score: score,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return api.ItemRankBefore(out[i], out[j]) })
	return out
}

// tracksAt is the pure tracks answer at a vector: one track per pair of
// sealed seconds, growing a sighting (same rank key, different struct)
// when the second of the pair seals.
func tracksAt(v api.WatermarkVector) []api.TrackItem {
	var out []api.TrackItem
	for stream, wm := range v {
		for t := 1; t <= int(wm); t += 2 {
			sightings := 1
			if float64(t+1) <= wm {
				sightings = 2
			}
			out = append(out, api.TrackItem{
				Stream: stream, Track: int64(t), Object: int64(t % 3),
				StartFrame: int64(t * 30), EndFrame: int64((t + sightings) * 30),
				StartSec: float64(t), EndSec: float64(t + sightings),
				Sightings: sightings, Score: float64((t*3)%4) + 1,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return api.TrackRankBefore(out[i], out[j]) })
	return out
}

func (w *fakeWorld) respAt(v api.WatermarkVector, form string) *api.QueryResponse {
	resp := &api.QueryResponse{Form: form, Watermarks: v.Clone(), GTInferences: 3, GPUTimeMS: 1.5}
	if form == api.FormTracks {
		resp.Tracks = tracksAt(v)
		resp.TotalItems = len(resp.Tracks)
	} else {
		resp.Items = itemsAt(v)
		resp.TotalItems = len(resp.Items)
	}
	return resp
}

func (w *fakeWorld) evaluator(form string) Eval {
	return func(pins api.WatermarkVector) (*api.QueryResponse, error) {
		if w.fail.Load() {
			return nil, errors.New("injected eval failure")
		}
		w.evals.Add(1)
		v := pins
		if v == nil {
			v = w.vector()
		}
		return w.respAt(v, form), nil
	}
}

func opts(w *fakeWorld, form string, streams ...string) Options {
	sort.Strings(streams)
	return Options{
		Key:     fmt.Sprintf("%s|%v", form, streams),
		Form:    form,
		Streams: streams,
		Eval:    w.evaluator(form),
	}
}

// recv pops the next event or fails after a timeout.
func recv(t *testing.T, sub *Subscription) *api.SubscribeEvent {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatalf("event stream closed; terminal=%+v", sub.Terminal())
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an event")
	}
	panic("unreachable")
}

// recvClosed asserts the stream is closed and returns the terminal event.
func recvClosed(t *testing.T, sub *Subscription) *api.SubscribeEvent {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if ok {
			t.Fatalf("expected closed stream, got event %+v", ev)
		}
		return sub.Terminal()
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for the stream to close")
	}
	panic("unreachable")
}

func noEvent(t *testing.T, sub *Subscription) {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatalf("stream closed unexpectedly; terminal=%+v", sub.Terminal())
		}
		t.Fatalf("expected no event, got %+v", ev)
	default:
	}
}

func TestCatchUpFromGenesis(t *testing.T) {
	w := newFakeWorld("a")
	w.advance("a", 3)
	r := NewRegistry()
	sub, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ev := recv(t, sub)
	if ev.Type != api.EventDelta {
		t.Fatalf("expected delta, got %+v", ev)
	}
	if !api.VectorsEqual(ev.Delta.From, api.WatermarkVector{"a": 0}) {
		t.Fatalf("catch-up From = %v, want genesis", ev.Delta.From)
	}
	if !api.VectorsEqual(ev.Delta.To, api.WatermarkVector{"a": 3}) {
		t.Fatalf("catch-up To = %v, want {a:3}", ev.Delta.To)
	}
	state, err := api.ApplyDeltaItems(nil, ev.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if want := itemsAt(w.vector()); !reflect.DeepEqual(state, want) {
		t.Fatalf("catch-up reassembly = %+v, want %+v", state, want)
	}
	if ev.Delta.GTInferences != 3 || ev.Delta.GPUTimeMS != 1.5 {
		t.Fatalf("delta lost eval cost: %+v", ev.Delta)
	}
	// A second subscriber joining at the group's current vector has
	// nothing to catch up on: its opening delta is empty (From == To, no
	// edits) but still declares the answer size and vector.
	sub2, err := r.Subscribe(Options{
		Key: opts(w, api.FormRanked, "a").Key, Form: api.FormRanked,
		Streams: []string{"a"}, Eval: w.evaluator(api.FormRanked),
		From: api.WatermarkVector{"a": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	empty := recv(t, sub2)
	if !api.VectorsEqual(empty.Delta.From, empty.Delta.To) || !api.VectorsEqual(empty.Delta.To, api.WatermarkVector{"a": 3}) {
		t.Fatalf("no-progress catch-up = %+v, want empty From==To=={a:3}", empty.Delta)
	}
	if len(empty.Delta.Items) != 0 || len(empty.Delta.RemovedItems) != 0 || empty.Delta.TotalItems != len(state) {
		t.Fatalf("no-progress catch-up carries edits: %+v", empty.Delta)
	}
	noEvent(t, sub2)
	if st := r.Stats(); st.Subscriptions != 2 || st.Active != 2 || st.Groups != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDeltasComposeToOneShot is the package-level core invariant: the
// concatenation of a subscription's deltas from genesis reassembles the
// one-shot answer at the last delivered vector, bit for bit, in both
// forms, under rescoring and retraction.
func TestDeltasComposeToOneShot(t *testing.T) {
	for _, form := range []string{api.FormRanked, api.FormTracks} {
		t.Run(form, func(t *testing.T) {
			w := newFakeWorld("a", "b")
			r := NewRegistry()
			sub, err := r.Subscribe(opts(w, form, "a", "b"))
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			var items []api.Item
			var tracks []api.TrackItem
			last := api.WatermarkVector{"a": 0, "b": 0}
			apply := func(d *api.Delta) {
				t.Helper()
				if !api.VectorsEqual(d.From, last) {
					t.Fatalf("delta From %v does not continue last To %v", d.From, last)
				}
				if form == api.FormTracks {
					tracks, err = api.ApplyDeltaTracks(tracks, d)
				} else {
					items, err = api.ApplyDeltaItems(items, d)
				}
				if err != nil {
					t.Fatal(err)
				}
				last = d.To
			}
			// The stream opens with the (empty, genesis) catch-up delta.
			apply(recv(t, sub).Delta)
			for step := 1; step <= 9; step++ {
				w.advance("a", float64(step))
				if step%2 == 0 {
					w.advance("b", float64(step/2))
				}
				r.Pump()
				apply(recv(t, sub).Delta)
			}
			// An empty Pump (no watermark progress) must not emit.
			r.Pump()
			noEvent(t, sub)
			if form == api.FormTracks {
				if want := tracksAt(last); !reflect.DeepEqual(tracks, want) {
					t.Fatalf("reassembled tracks != one-shot at %v:\ngot  %+v\nwant %+v", last, tracks, want)
				}
			} else {
				if want := itemsAt(last); !reflect.DeepEqual(items, want) {
					t.Fatalf("reassembled items != one-shot at %v:\ngot  %+v\nwant %+v", last, items, want)
				}
			}
		})
	}
}

// TestCoalescing pins the cost contract: N subscribers on one plan pay
// one evaluation per advance, and all see the identical delta.
func TestCoalescing(t *testing.T) {
	w := newFakeWorld("a")
	r := NewRegistry()
	o := opts(w, api.FormRanked, "a")
	const n = 8
	subs := make([]*Subscription, n)
	var err error
	for i := range subs {
		if subs[i], err = r.Subscribe(o); err != nil {
			t.Fatal(err)
		}
		defer subs[i].Close()
	}
	if got := w.evals.Load(); got != 1 {
		t.Fatalf("joining %d subscribers cost %d evals, want 1", n, got)
	}
	for _, sub := range subs {
		if ev := recv(t, sub); !api.VectorsEqual(ev.Delta.From, ev.Delta.To) {
			t.Fatalf("opening catch-up is not empty: %+v", ev.Delta)
		}
	}
	for step := 1; step <= 5; step++ {
		w.advance("a", float64(step))
		r.Pump()
		first := recv(t, subs[0])
		for _, sub := range subs[1:] {
			if ev := recv(t, sub); !reflect.DeepEqual(ev, first) {
				t.Fatalf("subscribers diverged: %+v vs %+v", ev, first)
			}
		}
	}
	if got := w.evals.Load(); got != 6 {
		t.Fatalf("%d subscribers over 5 advances cost %d evals, want 6", n, got)
	}
	// 5 broadcast deltas plus the opening catch-up, per subscriber.
	if st := r.Stats(); st.Evals != 6 || st.DeltaEvents != 6*n {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResumeFromMidVector(t *testing.T) {
	w := newFakeWorld("a")
	w.advance("a", 8)
	r := NewRegistry()
	o := opts(w, api.FormRanked, "a")
	o.From = api.WatermarkVector{"a": 5}
	sub, err := r.Subscribe(o)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ev := recv(t, sub)
	if !api.VectorsEqual(ev.Delta.From, api.WatermarkVector{"a": 5}) {
		t.Fatalf("resume delta From = %v, want {a:5}", ev.Delta.From)
	}
	state, err := api.ApplyDeltaItems(itemsAt(api.WatermarkVector{"a": 5}), ev.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if want := itemsAt(api.WatermarkVector{"a": 8}); !reflect.DeepEqual(state, want) {
		t.Fatalf("resume reassembly mismatch:\ngot  %+v\nwant %+v", state, want)
	}
}

func TestSubscribeErrors(t *testing.T) {
	w := newFakeWorld("a", "b")
	r := NewRegistry()
	o := opts(w, api.FormRanked, "a", "b")
	o.From = api.WatermarkVector{"a": 1}
	if _, err := r.Subscribe(o); err == nil {
		t.Fatal("resume vector with missing stream was accepted")
	}
	o.From = api.WatermarkVector{"a": 1, "c": 1}
	if _, err := r.Subscribe(o); err == nil {
		t.Fatal("resume vector with alien stream was accepted")
	}

	// First-join snapshot evaluation failing must surface, not wedge.
	w.fail.Store(true)
	o = opts(w, api.FormRanked, "a", "b")
	if _, err := r.Subscribe(o); err == nil {
		t.Fatal("failed snapshot eval was not surfaced")
	}
	w.fail.Store(false)

	// Resume evaluation failing must surface and leave the group usable.
	w.advance("a", 4)
	sub, err := r.Subscribe(opts(w, api.FormRanked, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv(t, sub)
	w.fail.Store(true)
	o = opts(w, api.FormRanked, "a", "b")
	o.From = api.WatermarkVector{"a": 2, "b": 0}
	if _, err := r.Subscribe(o); err == nil {
		t.Fatal("failed resume eval was not surfaced")
	}
	w.fail.Store(false)
	if st := r.Stats(); st.EvalErrors != 2 || st.Active != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSlowConsumerDrop pins the backpressure contract: a full queue sheds
// the subscriber with a typed drop whose Resume vector continues exactly
// where delivery stopped — never a skipped or partial delta.
func TestSlowConsumerDrop(t *testing.T) {
	w := newFakeWorld("a")
	r := NewRegistry()
	o := opts(w, api.FormRanked, "a")
	o.Queue = 1
	sub, err := r.Subscribe(o)
	if err != nil {
		t.Fatal(err)
	}
	catchup := recv(t, sub) // opening (empty, genesis) catch-up
	state, err := api.ApplyDeltaItems(nil, catchup.Delta)
	if err != nil {
		t.Fatal(err)
	}
	// Two advances without reading: the first delta fills the queue, the
	// second overflows it.
	w.advance("a", 1)
	r.Pump()
	w.advance("a", 2)
	r.Pump()
	first := recv(t, sub)
	if !api.VectorsEqual(first.Delta.To, api.WatermarkVector{"a": 1}) {
		t.Fatalf("buffered delta To = %v, want {a:1}", first.Delta.To)
	}
	term := recvClosed(t, sub)
	if term == nil || term.Type != api.EventDrop || term.Reason != api.ReasonSlowConsumer {
		t.Fatalf("terminal = %+v, want slow_consumer drop", term)
	}
	if !api.VectorsEqual(term.Resume, first.Delta.To) {
		t.Fatalf("drop Resume = %v, want last delivered To %v", term.Resume, first.Delta.To)
	}
	if st := r.Stats(); st.Drops != 1 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Resuming from the advertised vector continues gap-free.
	if state, err = api.ApplyDeltaItems(state, first.Delta); err != nil {
		t.Fatal(err)
	}
	o = opts(w, api.FormRanked, "a")
	o.From = term.Resume
	sub2, err := r.Subscribe(o)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	ev := recv(t, sub2)
	if state, err = api.ApplyDeltaItems(state, ev.Delta); err != nil {
		t.Fatal(err)
	}
	if want := itemsAt(api.WatermarkVector{"a": 2}); !reflect.DeepEqual(state, want) {
		t.Fatalf("post-resume reassembly mismatch:\ngot  %+v\nwant %+v", state, want)
	}
}

func TestDrain(t *testing.T) {
	w := newFakeWorld("a")
	r := NewRegistry()
	sub, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatal(err)
	}
	recv(t, sub) // opening catch-up
	r.Drain()
	term := recvClosed(t, sub)
	if term == nil || term.Type != api.EventBye || term.Reason != api.ReasonDraining {
		t.Fatalf("terminal = %+v, want draining bye", term)
	}
	if _, err := r.Subscribe(opts(w, api.FormRanked, "a")); err == nil {
		t.Fatal("Subscribe after Drain was accepted")
	}
	if st := r.Stats(); st.Groups != 0 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
	r.Drain() // idempotent
	r.Kick()  // no-op after drain, must not panic
}

func TestComplete(t *testing.T) {
	w := newFakeWorld("a")
	w.advance("a", 2)
	r := NewRegistry()
	sub, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatal(err)
	}
	recv(t, sub) // catch-up to {a:2}
	w.advance("a", 3)
	r.Complete()
	final := recv(t, sub)
	if !api.VectorsEqual(final.Delta.To, api.WatermarkVector{"a": 3}) {
		t.Fatalf("final delta To = %v, want the frozen vector", final.Delta.To)
	}
	term := recvClosed(t, sub)
	if term == nil || term.Type != api.EventBye || term.Reason != api.ReasonComplete {
		t.Fatalf("terminal = %+v, want complete bye", term)
	}

	// A subscriber arriving after completion still gets the full catch-up
	// against the frozen answer, then the same terminal.
	late, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatal(err)
	}
	ev := recv(t, late)
	state, err := api.ApplyDeltaItems(nil, ev.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if want := itemsAt(api.WatermarkVector{"a": 3}); !reflect.DeepEqual(state, want) {
		t.Fatalf("late catch-up mismatch:\ngot  %+v\nwant %+v", state, want)
	}
	if term := recvClosed(t, late); term == nil || term.Reason != api.ReasonComplete {
		t.Fatalf("late terminal = %+v, want complete bye", term)
	}
}

func TestCloseRemovesGroup(t *testing.T) {
	w := newFakeWorld("a")
	r := NewRegistry()
	sub, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	if st := r.Stats(); st.Groups != 1 || st.Active != 1 {
		t.Fatalf("stats after first close = %+v", st)
	}
	sub2.Close()
	if st := r.Stats(); st.Groups != 0 || st.Active != 0 {
		t.Fatalf("stats after last close = %+v", st)
	}
	if sub.Terminal() != nil {
		t.Fatalf("consumer-initiated close has no terminal, got %+v", sub.Terminal())
	}
	r.Kick() // empty registry, must not panic
}

// TestKickCoalesces pins that a burst of watermark advances collapses
// into few evaluations rather than one per kick.
func TestKickCoalesces(t *testing.T) {
	w := newFakeWorld("a")
	r := NewRegistry()
	gate := make(chan struct{})
	var evals atomic.Int64
	o := opts(w, api.FormRanked, "a")
	inner := o.Eval
	o.Eval = func(pins api.WatermarkVector) (*api.QueryResponse, error) {
		if evals.Add(1) > 1 {
			<-gate // hold the evaluator so kicks pile up
		}
		return inner(pins)
	}
	sub, err := r.Subscribe(o)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	const kicks = 20
	for i := 1; i <= kicks; i++ {
		w.advance("a", float64(i))
		r.Kick()
	}
	close(gate)
	// The final coalesced evaluation must land on the final vector; read
	// deltas until it does.
	last := api.WatermarkVector{"a": 0}
	for !api.VectorsEqual(last, api.WatermarkVector{"a": kicks}) {
		last = recv(t, sub).Delta.To
	}
	if got := evals.Load(); got >= kicks {
		t.Fatalf("%d kicks cost %d evals, want coalescing", kicks, got)
	}
}

// TestJoinLeaveRace exercises the registry's whole lifecycle under the
// race detector: subscribers join, reassemble, and leave concurrently
// with watermark advances, and every completed subscription's reassembled
// state must equal the one-shot answer at its final vector.
func TestJoinLeaveRace(t *testing.T) {
	w := newFakeWorld("a", "b")
	r := NewRegistry()
	stop := make(chan struct{})
	var advancer sync.WaitGroup
	advancer.Add(1)
	go func() {
		defer advancer.Done()
		for step := 1; ; step++ {
			select {
			case <-stop:
				return
			default:
			}
			w.advance("a", float64(step))
			w.advance("b", float64(step)/2)
			r.Kick()
			time.Sleep(time.Millisecond)
		}
	}()

	var subscribers sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		subscribers.Add(1)
		go func(i int) {
			defer subscribers.Done()
			form := api.FormRanked
			if i%2 == 1 {
				form = api.FormTracks
			}
			for round := 0; round < 4; round++ {
				if err := subscribeOnce(r, w, form, 3+i%5); err != nil {
					errs <- fmt.Errorf("subscriber %d round %d: %w", i, round, err)
					return
				}
			}
		}(i)
	}
	subscribers.Wait()
	close(stop)
	advancer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// subscribeOnce joins, reassembles a few deltas, validates the state
// against the pure answer at the last delivered vector, and leaves.
func subscribeOnce(r *Registry, w *fakeWorld, form string, deltas int) error {
	sub, err := r.Subscribe(opts(w, form, "a", "b"))
	if err != nil {
		return err
	}
	defer sub.Close()
	var items []api.Item
	var tracks []api.TrackItem
	last := api.WatermarkVector{"a": 0, "b": 0}
	deadline := time.After(10 * time.Second)
	for n := 0; n < deltas; {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return fmt.Errorf("stream ended early: terminal=%+v", sub.Terminal())
			}
			d := ev.Delta
			if !api.VectorsEqual(d.From, last) {
				return fmt.Errorf("delta From %v does not continue last To %v", d.From, last)
			}
			if form == api.FormTracks {
				tracks, err = api.ApplyDeltaTracks(tracks, d)
			} else {
				items, err = api.ApplyDeltaItems(items, d)
			}
			if err != nil {
				return err
			}
			last = d.To
			n++
		case <-deadline:
			return errors.New("timed out waiting for deltas")
		}
	}
	if form == api.FormTracks {
		if want := tracksAt(last); !reflect.DeepEqual(tracks, want) {
			return fmt.Errorf("reassembled tracks != one-shot at %v", last)
		}
	} else {
		if want := itemsAt(last); !reflect.DeepEqual(items, want) {
			return fmt.Errorf("reassembled items != one-shot at %v", last)
		}
	}
	return nil
}

func TestGenesisHelpers(t *testing.T) {
	v := genesisVector([]string{"a", "b"})
	if !genesis(v) {
		t.Fatalf("genesisVector(%v) is not genesis", v)
	}
	if genesis(api.WatermarkVector{"a": 0.5}) {
		t.Fatal("positive watermark misread as genesis")
	}
	if !genesis(api.WatermarkVector{"a": 0, "b": -math.SmallestNonzeroFloat64}) {
		t.Fatal("non-positive watermarks must read as genesis")
	}
}

// TestCloseStreams pins the handoff path: subscriptions touching a moved
// stream end with a typed bye, everything else keeps streaming, and new
// subscriptions are still accepted (they will resolve against the
// post-handoff stream set).
func TestCloseStreams(t *testing.T) {
	w := newFakeWorld("a", "b")
	r := NewRegistry()
	onA, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatal(err)
	}
	onB, err := r.Subscribe(opts(w, api.FormRanked, "b"))
	if err != nil {
		t.Fatal(err)
	}
	onBoth, err := r.Subscribe(opts(w, api.FormRanked, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	recv(t, onA)
	recv(t, onB)
	recv(t, onBoth) // opening catch-ups

	r.CloseStreams(api.ReasonMoved, "a")
	for _, sub := range []*Subscription{onA, onBoth} {
		term := recvClosed(t, sub)
		if term == nil || term.Type != api.EventBye || term.Reason != api.ReasonMoved {
			t.Fatalf("terminal = %+v, want moved bye", term)
		}
	}
	if st := r.Stats(); st.Groups != 1 || st.Active != 1 {
		t.Fatalf("stats after close = %+v", st)
	}

	// The untouched group keeps streaming.
	w.advance("b", 2)
	r.Kick()
	if ev := recv(t, onB); ev.Type != api.EventDelta {
		t.Fatalf("survivor got %+v, want a delta", ev)
	}

	// Unlike Drain, CloseStreams leaves the registry open for business:
	// a fresh subscription on the moved stream resolves anew.
	fresh, err := r.Subscribe(opts(w, api.FormRanked, "a"))
	if err != nil {
		t.Fatalf("Subscribe after CloseStreams: %v", err)
	}
	recv(t, fresh)
	fresh.Close()
	onB.Close()

	r.CloseStreams(api.ReasonMoved, "nothing-matches") // no-op, must not panic
}
