package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	err := ForEach(8, 100, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 97:
			return errors.New("high")
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(0, 3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("v%04d", i*i), nil }
	seq, err := Map(1, 500, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(16, 500, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: %q sequential vs %q parallel", i, seq[i], par[i])
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	}); err != boom {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestWorkerSizing(t *testing.T) {
	if w := CPUWorkers(0); w < 1 {
		t.Fatalf("CPUWorkers(0) = %d", w)
	}
	if w := CPUWorkers(1); w != 1 {
		t.Fatalf("CPUWorkers(1) = %d, want 1", w)
	}
	if w := StreamWorkers(5, 0); w != 5 {
		t.Fatalf("StreamWorkers(5, 0) = %d, want 5", w)
	}
	if w := StreamWorkers(5, 2); w != 2 {
		t.Fatalf("StreamWorkers(5, 2) = %d, want 2", w)
	}
	if w := StreamWorkers(5, 99); w != 5 {
		t.Fatalf("StreamWorkers(5, 99) = %d, want 5", w)
	}
	if w := StreamWorkers(0, 0); w != 1 {
		t.Fatalf("StreamWorkers(0, 0) = %d, want 1", w)
	}
}
