package parallel

import (
	"sync"
	"testing"
	"time"
)

func TestLimiterRejectsWhenQueueFull(t *testing.T) {
	l := NewLimiter(1, 0)
	if !l.Acquire() {
		t.Fatal("first acquire must succeed")
	}
	if l.Acquire() {
		t.Fatal("second acquire must be rejected with a zero queue")
	}
	l.Release()
	if !l.Acquire() {
		t.Fatal("acquire after release must succeed")
	}
	l.Release()
}

func TestLimiterQueuedWaiterGetsSlot(t *testing.T) {
	l := NewLimiter(1, 1)
	if !l.Acquire() {
		t.Fatal("first acquire must succeed")
	}
	got := make(chan bool)
	go func() { got <- l.Acquire() }()
	// Wait until the goroutine is queued, then free the slot.
	deadline := time.Now().Add(2 * time.Second)
	for l.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Waiting() != 1 {
		t.Fatalf("waiting %d, want 1", l.Waiting())
	}
	l.Release()
	if !<-got {
		t.Fatal("queued waiter should have been admitted")
	}
	l.Release()
}

func TestLimiterConcurrencyNeverExceedsWorkers(t *testing.T) {
	const workers, clients = 4, 64
	l := NewLimiter(workers, clients)
	var mu sync.Mutex
	inFlight, maxInFlight, admitted := 0, 0, 0
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !l.Acquire() {
				return
			}
			mu.Lock()
			inFlight++
			admitted++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			l.Release()
		}()
	}
	wg.Wait()
	if maxInFlight > workers {
		t.Errorf("observed %d concurrent holders, limit %d", maxInFlight, workers)
	}
	if admitted == 0 {
		t.Error("nobody was admitted")
	}
	if l.InFlight() != 0 || l.Waiting() != 0 {
		t.Errorf("limiter not drained: in-flight %d, waiting %d", l.InFlight(), l.Waiting())
	}
}
