// Package parallel is the bounded worker-pool runtime shared by every
// fan-out path in the system: concurrent multi-stream ingest, the tuner's
// candidate-grid sweep, cross-stream query fan-out, and batched GT-CNN
// verification.
//
// Two rules make the runtime safe to drop into simulation hot paths:
//
//   - Determinism: work is identified by index, results are written to
//     per-index slots, and the first error by index (not by completion
//     order) wins. A loop executed with 1 worker and with N workers
//     produces bit-identical results as long as each iteration is a pure
//     function of its index.
//   - Bounded concurrency: worker counts derive from GOMAXPROCS for
//     CPU-bound loops, and from the number of independent latency-bound
//     tasks (per-stream workers, per-GPU verification slots) for work that
//     blocks on simulated GPU time.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CPUWorkers returns the worker count for a CPU-bound loop of n independent
// iterations: min(n, GOMAXPROCS), at least 1. Passing n <= 0 returns
// GOMAXPROCS.
func CPUWorkers(n int) int {
	p := runtime.GOMAXPROCS(0)
	if n > 0 && n < p {
		return n
	}
	if p < 1 {
		return 1
	}
	return p
}

// StreamWorkers returns the worker count for latency-bound per-stream work
// (ingest workers blocking on simulated GPU inference): one worker per
// stream, following the paper's one-ingest-worker-per-stream deployment.
// requested > 0 overrides (clamped to [1, n]).
func StreamWorkers(n, requested int) int {
	if n < 1 {
		return 1
	}
	if requested > 0 {
		if requested > n {
			return n
		}
		return requested
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the error of the lowest failing index, or nil. Iterations are
// claimed from a shared atomic counter, so the set of iterations each
// worker executes is scheduling-dependent — fn must not depend on
// cross-iteration state. workers <= 1 (or n <= 1) runs inline on the
// calling goroutine in index order: the sequential reference path.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Limiter is the admission-control primitive for long-running services: at
// most workers acquisitions execute concurrently, at most queue callers wait
// for a free slot, and everyone beyond that is rejected immediately so
// overload degrades into fast, predictable rejections instead of unbounded
// queueing. The zero Limiter is not usable; construct with NewLimiter.
type Limiter struct {
	slots   chan struct{}
	waiting atomic.Int64
	queue   int64
}

// NewLimiter builds a limiter with the given concurrency and queue bounds.
// workers < 1 is clamped to 1; queue < 0 is clamped to 0 (reject as soon as
// all workers are busy).
func NewLimiter(workers, queue int) *Limiter {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Limiter{slots: make(chan struct{}, workers), queue: int64(queue)}
}

// Acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It returns false — without blocking — when the queue is
// full; the caller should reject the request (HTTP 429). Every true return
// must be paired with Release.
func (l *Limiter) Acquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
	}
	// The waiting counter admits at most `queue` concurrent waiters. It is
	// checked optimistically: a burst can transiently overshoot by the
	// number of racing callers, which only tightens rejection, never grows
	// the queue unboundedly.
	if l.waiting.Add(1) > l.queue {
		l.waiting.Add(-1)
		return false
	}
	l.slots <- struct{}{}
	l.waiting.Add(-1)
	return true
}

// Release frees a slot claimed by a successful Acquire.
func (l *Limiter) Release() { <-l.slots }

// InFlight returns how many acquisitions currently hold slots.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Waiting returns how many callers are queued for a slot.
func (l *Limiter) Waiting() int { return int(l.waiting.Load()) }

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. On error the first failing index's
// error is returned and the results are discarded. The same determinism
// contract as ForEach applies: workers == 1 is the sequential reference
// path and must produce identical output.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
