package focus_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates the corresponding artifact end to end — synthetic
// streams, tuning, ingestion, queries, baselines — and reports the headline
// factors as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The heavyweight intermediate artifacts
// (ground truths, tuner sweeps) are shared through a lazily-built
// environment, mirroring how cmd/focus-bench runs the suite.

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"focus"
	"focus/internal/experiments"
	"focus/internal/scalebench"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// benchScale is the per-stream window used by the bench harness: large
// enough for stable factors, small enough that the full suite finishes in
// minutes.
const benchScale = 200.0

func sharedEnv() *experiments.Env {
	benchEnvOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.DurationSec = benchScale
		benchEnv = experiments.NewEnv(cfg)
	})
	return benchEnv
}

// runExperiment executes one named experiment per benchmark iteration and
// reports factor metrics parsed from its notes.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	env := sharedEnv()
	for i := 0; i < b.N; i++ {
		tables, err := env.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFactors(b, tables)
		}
	}
}

// reportFactors extracts "NNx" factors from table notes into benchmark
// metrics (averages only, to keep output compact).
func reportFactors(b *testing.B, tables []*experiments.Table) {
	for _, t := range tables {
		for _, note := range t.Notes {
			if !strings.HasPrefix(note, "average") {
				continue
			}
			fields := strings.Fields(note)
			for j, f := range fields {
				v, ok := parseFactor(f)
				if !ok {
					continue
				}
				label := "factor"
				if j > 0 {
					label = strings.Trim(fields[j-1], ":,")
				}
				b.ReportMetric(v, sanitizeMetric(t.ID+"_"+label))
				break // first factor per note is the headline
			}
		}
	}
}

func parseFactor(s string) (float64, bool) {
	s = strings.Trim(s, ",;()")
	if !strings.HasSuffix(s, "x") {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func sanitizeMetric(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "§", "sec")
	return s + "_x"
}

func BenchmarkTable1Characteristics(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFigure3ClassCDF(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkCharacterizationOccupancy(b *testing.B) {
	runExperiment(b, "occupancy")
}
func BenchmarkCharacterizationNNFeatures(b *testing.B) {
	runExperiment(b, "nnfeatures")
}
func BenchmarkFigure5RecallVsK(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFigure6ParameterSelection(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFigure1TradeoffSpace(b *testing.B)      { runExperiment(b, "fig1") }
func BenchmarkFigure7EndToEnd(b *testing.B)           { runExperiment(b, "fig7") }
func BenchmarkFigure8Ablation(b *testing.B)           { runExperiment(b, "fig8") }
func BenchmarkFigure9TradeoffPerStream(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFigure10AccuracyIngest(b *testing.B)    { runExperiment(b, "fig10-11") }
func BenchmarkFigure12FrameRateIngest(b *testing.B)   { runExperiment(b, "fig12-13") }
func BenchmarkSection67QueryRates(b *testing.B)       { runExperiment(b, "sec6.7") }

// runScaling measures one multi-stream scaling point — wall-clock speedup
// of concurrent ingest-all and cross-stream query fan-out over their
// sequential reference paths — and appends it to the BENCH_parallel.json
// trajectory. The parallel paths must reproduce the sequential results
// exactly; a divergence fails the benchmark.
func runScaling(b *testing.B, streams int) {
	b.Helper()
	cfg := scalebench.DefaultConfig()
	cfg.StreamCounts = []int{streams}
	var rep *scalebench.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = scalebench.Run(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	p := rep.Points[0]
	if !p.Identical {
		b.Fatalf("parallel run diverged from sequential run at %d streams", streams)
	}
	b.ReportMetric(p.IngestSpeedup, "ingest_speedup_x")
	b.ReportMetric(p.QuerySpeedup, "query_speedup_x")
	b.ReportMetric(p.IngestParSec, "ingest_par_sec")
	b.ReportMetric(p.QueryParSec, "query_par_sec")
	if err := scalebench.AppendJSON("BENCH_parallel.json", rep); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScalingStreams1(b *testing.B)  { runScaling(b, 1) }
func BenchmarkScalingStreams4(b *testing.B)  { runScaling(b, 4) }
func BenchmarkScalingStreams16(b *testing.B) { runScaling(b, 16) }

// BenchmarkQuickstartPipeline measures the end-to-end public-API pipeline
// (tune + ingest + one query) on one stream, the unit of work a user's
// deployment repeats per stream.
func BenchmarkQuickstartPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := focus.New(focus.Config{})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := sys.AddTable1Stream("bend")
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Ingest(focus.GenOptions{DurationSec: 90, SampleEvery: 1}); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Query(focus.Query{Class: "car"}); err != nil {
			b.Fatal(err)
		}
		sys.Close()
	}
}
