package client

import (
	"context"
	"fmt"
	"reflect"

	"focus/api"
)

// Pager iterates a ranked query page by page through the opaque cursor.
// The first Next issues the seed request with the page limit; later Next
// calls follow the cursor the previous response returned, so every page is
// served from the same execution pinned at the first page's watermark
// vector — the concatenation of all pages is bit-identical to the one-shot
// answer at that vector.
//
//	pager := c.Pager(&api.QueryRequest{Expr: "car & person", TopK: 50}, 10)
//	for pager.More() {
//	    items, err := pager.Next(ctx)
//	    ...
//	}
type Pager struct {
	c     *Client
	seed  api.QueryRequest
	limit int
	next  string // cursor for the next page ("" before the first)
	begun bool
	done  bool
	last  *api.QueryResponse
}

// Pager starts a paged read of req with pages of at most limit items.
// The request's own Limit and Cursor fields are ignored (the pager owns
// paging); limit must be positive.
func (c *Client) Pager(req *api.QueryRequest, limit int) *Pager {
	return &Pager{c: c, seed: *req, limit: limit}
}

// More reports whether another Next call may yield items.
func (p *Pager) More() bool { return !p.done }

// Last returns the most recent page's full response (nil before the first
// Next), e.g. to read the pinned Watermarks or TotalItems.
func (p *Pager) Last() *api.QueryResponse { return p.last }

// Next fetches the next page. After the final page (the server returns no
// continuation cursor), More reports false.
func (p *Pager) Next(ctx context.Context) ([]api.Item, error) {
	if p.done {
		return nil, fmt.Errorf("client: Next called after the final page")
	}
	if p.limit <= 0 {
		p.done = true
		return nil, fmt.Errorf("client: page limit must be positive, got %d", p.limit)
	}
	req := api.QueryRequest{Limit: p.limit}
	if !p.begun {
		req = p.seed
		req.Limit, req.Cursor = p.limit, ""
	} else {
		req.Cursor = p.next
	}
	resp, err := p.c.Query(ctx, &req)
	if err != nil {
		p.done = true
		return nil, err
	}
	if resp.Form != api.FormRanked {
		p.done = true
		return nil, fmt.Errorf("client: paged read answered in %q form (paging needs the ranked form)", resp.Form)
	}
	p.begun = true
	p.last = resp
	p.next = resp.Cursor
	if p.next == "" {
		p.done = true
	}
	return resp.Items, nil
}

// TrackPager iterates a temporal (tracks-form) query page by page, the
// tracks mirror of Pager: the first Next issues the seed request, later
// Next calls follow the cursor, and every page is served from the same
// execution pinned at the first page's watermark vector.
type TrackPager struct {
	c     *Client
	seed  api.QueryRequest
	limit int
	next  string
	begun bool
	done  bool
	last  *api.QueryResponse
}

// TrackPager starts a paged tracks-form read of req with pages of at most
// limit tracks. The request's own Limit and Cursor fields are ignored
// (the pager owns paging); limit must be positive.
func (c *Client) TrackPager(req *api.QueryRequest, limit int) *TrackPager {
	return &TrackPager{c: c, seed: *req, limit: limit}
}

// More reports whether another Next call may yield tracks.
func (p *TrackPager) More() bool { return !p.done }

// Last returns the most recent page's full response (nil before the first
// Next), e.g. to read the pinned Watermarks or TotalItems.
func (p *TrackPager) Last() *api.QueryResponse { return p.last }

// Next fetches the next page of tracks. After the final page (the server
// returns no continuation cursor), More reports false.
func (p *TrackPager) Next(ctx context.Context) ([]api.TrackItem, error) {
	if p.done {
		return nil, fmt.Errorf("client: Next called after the final page")
	}
	if p.limit <= 0 {
		p.done = true
		return nil, fmt.Errorf("client: page limit must be positive, got %d", p.limit)
	}
	req := api.QueryRequest{Limit: p.limit}
	if !p.begun {
		req = p.seed
		req.Limit, req.Cursor = p.limit, ""
	} else {
		req.Cursor = p.next
	}
	resp, err := p.c.Query(ctx, &req)
	if err != nil {
		p.done = true
		return nil, err
	}
	if resp.Form != api.FormTracks {
		p.done = true
		return nil, fmt.Errorf("client: paged track read answered in %q form (track paging needs the tracks form)", resp.Form)
	}
	p.begun = true
	p.last = resp
	p.next = resp.Cursor
	if p.next == "" {
		p.done = true
	}
	return resp.Tracks, nil
}

// CollectPages runs a complete paged read and reassembles it into one
// response: Items are the concatenated pages, everything else comes from
// the first page (whose cost counters describe the actual execution —
// later pages are cache reads of it by construction). It verifies the
// cross-page invariants while collecting: every page must echo the same
// canonical expr, pinned watermark vector, and TotalItems, and the item
// count must add up. The result is directly comparable to (and must be
// bit-identical with) the one-shot answer at the pinned vector.
func (c *Client) CollectPages(ctx context.Context, req *api.QueryRequest, limit int) (*api.QueryResponse, error) {
	pager := c.Pager(req, limit)
	var out *api.QueryResponse
	var items []api.Item
	for pager.More() {
		page, err := pager.Next(ctx)
		if err != nil {
			return nil, err
		}
		resp := pager.Last()
		if out == nil {
			out = resp
		} else {
			if resp.Expr != out.Expr {
				return nil, fmt.Errorf("client: page changed canonical expr %q -> %q", out.Expr, resp.Expr)
			}
			if !reflect.DeepEqual(resp.Watermarks, out.Watermarks) {
				return nil, fmt.Errorf("client: page changed pinned watermarks %v -> %v", out.Watermarks, resp.Watermarks)
			}
			if resp.TotalItems != out.TotalItems {
				return nil, fmt.Errorf("client: page changed total_items %d -> %d", out.TotalItems, resp.TotalItems)
			}
		}
		items = append(items, page...)
	}
	if out == nil {
		return nil, fmt.Errorf("client: paged read yielded no pages")
	}
	if len(items) != out.TotalItems {
		return nil, fmt.Errorf("client: pages yielded %d items, server reported %d", len(items), out.TotalItems)
	}
	assembled := *out
	assembled.Items = items
	assembled.Cursor = ""
	return &assembled, nil
}

// CollectTrackPages is CollectPages for the tracks form: it runs a
// complete paged track read, verifies the same cross-page invariants
// (stable canonical expr, pinned watermark vector, and TotalItems; track
// count adding up), and reassembles one response directly comparable to
// the one-shot answer at the pinned vector.
func (c *Client) CollectTrackPages(ctx context.Context, req *api.QueryRequest, limit int) (*api.QueryResponse, error) {
	pager := c.TrackPager(req, limit)
	var out *api.QueryResponse
	var tracks []api.TrackItem
	for pager.More() {
		page, err := pager.Next(ctx)
		if err != nil {
			return nil, err
		}
		resp := pager.Last()
		if out == nil {
			out = resp
		} else {
			if resp.Expr != out.Expr {
				return nil, fmt.Errorf("client: page changed canonical expr %q -> %q", out.Expr, resp.Expr)
			}
			if !reflect.DeepEqual(resp.Watermarks, out.Watermarks) {
				return nil, fmt.Errorf("client: page changed pinned watermarks %v -> %v", out.Watermarks, resp.Watermarks)
			}
			if resp.TotalItems != out.TotalItems {
				return nil, fmt.Errorf("client: page changed total_items %d -> %d", out.TotalItems, resp.TotalItems)
			}
		}
		tracks = append(tracks, page...)
	}
	if out == nil {
		return nil, fmt.Errorf("client: paged read yielded no pages")
	}
	if len(tracks) != out.TotalItems {
		return nil, fmt.Errorf("client: pages yielded %d tracks, server reported %d", len(tracks), out.TotalItems)
	}
	assembled := *out
	assembled.Tracks = tracks
	assembled.Cursor = ""
	return &assembled, nil
}
