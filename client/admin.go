package client

// Typed wrappers for the admin surface of live resharding: the
// shard-level handoff endpoints (seal/export/import/activate/release/
// resume, served by focus-serve) and the router-level reshard operation.
// Operator tooling (the focus CLI's reshard command, the cluster
// harness, the crash-matrix tests) drives handoffs through these instead
// of hand-rolled HTTP.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"focus/api"
)

// AdminSeal parks a stream's ingestion at a watermark boundary behind a
// durable checkpoint (POST /v1/admin/seal on a shard). Idempotent while
// sealed; the seal auto-resumes after the shard's handoff TTL.
func (c *Client) AdminSeal(ctx context.Context, stream string) (*api.SealResponse, error) {
	body, err := json.Marshal(api.AdminStreamRequest{Stream: stream})
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var out api.SealResponse
	if err := c.do(ctx, http.MethodPost, api.PathAdminSeal, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminResume unparks a sealed stream back into normal ingestion — the
// abort path of a handoff (POST /v1/admin/resume on a shard).
func (c *Client) AdminResume(ctx context.Context, stream string) error {
	body, err := json.Marshal(api.AdminStreamRequest{Stream: stream})
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	return c.do(ctx, http.MethodPost, api.PathAdminResume, body, nil)
}

// AdminExport returns a sealed stream's handoff payload — spec, sealed
// watermark, epoch, and checkpoint records (POST /v1/admin/export on a
// shard).
func (c *Client) AdminExport(ctx context.Context, stream string) (*api.StreamExport, error) {
	body, err := json.Marshal(api.AdminStreamRequest{Stream: stream})
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var out api.StreamExport
	if err := c.do(ctx, http.MethodPost, api.PathAdminExport, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminImport restores an exported stream on the target shard, hidden
// until activated (POST /v1/admin/import). The import auto-discards
// after the shard's handoff TTL if no activation arrives.
func (c *Client) AdminImport(ctx context.Context, export *api.StreamExport) error {
	body, err := json.Marshal(export)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	return c.do(ctx, http.MethodPost, api.PathAdminImport, body, nil)
}

// AdminActivate commits an imported stream: it becomes visible and its
// live ingestion tail resumes (POST /v1/admin/activate on a shard).
func (c *Client) AdminActivate(ctx context.Context, stream string) error {
	body, err := json.Marshal(api.AdminStreamRequest{Stream: stream})
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	return c.do(ctx, http.MethodPost, api.PathAdminActivate, body, nil)
}

// AdminRelease removes a stream from the target shard — the final step
// of a handoff on the source, or the rollback of an unactivated import
// on the destination (POST /v1/admin/release).
func (c *Client) AdminRelease(ctx context.Context, stream string) error {
	body, err := json.Marshal(api.AdminStreamRequest{Stream: stream})
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	return c.do(ctx, http.MethodPost, api.PathAdminRelease, body, nil)
}

// Reshard transitions the cluster behind a router to the target shard
// map (POST /v1/admin/reshard), live; with dryRun the router only plans
// and reports which streams would move. The call is synchronous: it
// returns once every planned move completed or failed.
func (c *Client) Reshard(ctx context.Context, m api.AdminShardMap, dryRun bool) (*api.ReshardResponse, error) {
	body, err := json.Marshal(api.ReshardRequest{Map: m, DryRun: dryRun})
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var out api.ReshardResponse
	if err := c.do(ctx, http.MethodPost, api.PathAdminReshard, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
