package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"focus/api"
)

// Subscriber is a standing query's client side: it consumes the SSE
// stream of POST /v1/subscribe, verifies the delta protocol (contiguous
// vectors, applicable edits), maintains the reassembled result, and
// reconnects transparently when the transport fails or the server sheds
// it as a slow consumer — resuming from the last delivered vector, so
// the delta sequence the caller observes has no gaps and no duplicates
// by construction.
//
// Create with Client.Subscribe, then call Recv until it returns io.EOF
// (server completed or drained the subscription — Reason tells which) or
// an error. Subscribers are not safe for concurrent use, except Close.
type Subscriber struct {
	c   *Client
	ctx context.Context
	// req is the original request; reconnects reissue it with From moved
	// to the last delivered vector.
	req   api.SubscribeRequest
	hello *api.SubscribeHello

	resp *http.Response
	rd   *api.SSEReader

	// reassemble is set when the subscription started from genesis: only
	// then does the delta stream reconstruct the full answer, so Items
	// and Tracks track state. A mid-stream resume (req.From set) still
	// verifies contiguity but leaves reassembly to the caller.
	reassemble bool
	items      []api.Item
	tracks     []api.TrackItem
	vector     api.WatermarkVector

	reason     string
	reconnects int
	closed     atomic.Bool
	// connMu guards resp against a concurrent Close (the one cross-
	// goroutine entry point).
	connMu sync.Mutex
}

// Subscribe opens a standing query against POST /v1/subscribe and returns
// after the server's hello frame. Typed rejections (bad expr, pin ahead,
// draining, …) come back as *api.Error.
func (c *Client) Subscribe(ctx context.Context, req *api.SubscribeRequest) (*Subscriber, error) {
	s := &Subscriber{c: c, ctx: ctx, req: *req}
	if len(req.From) > 0 {
		s.req.From = req.From.Clone()
	}
	hello, err := s.connect(s.req.From)
	if err != nil {
		return nil, err
	}
	s.hello = hello
	if len(s.req.From) > 0 {
		s.vector = s.req.From.Clone()
	} else {
		s.reassemble = true
		s.vector = make(api.WatermarkVector, len(hello.Streams))
		for _, name := range hello.Streams {
			s.vector[name] = 0
		}
	}
	return s, nil
}

// connect opens one SSE stream resuming from the given vector and reads
// its hello frame.
func (s *Subscriber) connect(from api.WatermarkVector) (*api.SubscribeHello, error) {
	req := s.req
	req.From = from
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding subscribe request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(s.ctx, http.MethodPost, s.c.base+api.PathSubscribe, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := s.c.httpc.Do(hreq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, api.DecodeError(resp.StatusCode, raw)
	}
	rd := api.NewSSEReader(resp.Body)
	ev, err := rd.Next()
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("client: reading subscription hello: %w", err)
	}
	if ev.Type != api.EventHello {
		resp.Body.Close()
		return nil, fmt.Errorf("client: subscription opened with %q, want hello", ev.Type)
	}
	s.connMu.Lock()
	if s.closed.Load() {
		s.connMu.Unlock()
		resp.Body.Close()
		return nil, errSubscriberClosed
	}
	s.resp = resp
	s.rd = rd
	s.connMu.Unlock()
	return ev.Hello, nil
}

// errSubscriberClosed reports a Recv after Close.
var errSubscriberClosed = errors.New("client: subscriber is closed")

// Recv returns the next verified delta. On a transport failure or a typed
// slow-consumer drop it reconnects with From at the last delivered vector
// (retrying per the client's retry policy) and keeps going — the returned
// delta sequence stays contiguous either way. It returns io.EOF when the
// server ends the subscription with a terminal bye (Reason reports why),
// and an error for protocol violations, exhausted reconnects, context
// cancellation, or Close.
func (s *Subscriber) Recv() (*api.Delta, error) {
	for {
		if s.closed.Load() {
			return nil, errSubscriberClosed
		}
		ev, err := s.rd.Next()
		if err != nil {
			if err := s.reconnect(); err != nil {
				return nil, err
			}
			continue
		}
		switch ev.Type {
		case api.EventDelta:
			d := ev.Delta
			if !api.VectorsEqual(d.From, s.vector) {
				return nil, fmt.Errorf("client: delta From %v does not continue the delivered vector %v",
					d.From, s.vector)
			}
			if s.reassemble {
				if s.hello.Form == api.FormTracks {
					s.tracks, err = api.ApplyDeltaTracks(s.tracks, d)
				} else {
					s.items, err = api.ApplyDeltaItems(s.items, d)
				}
				if err != nil {
					return nil, fmt.Errorf("client: delta does not apply: %w", err)
				}
			}
			s.vector = d.To.Clone()
			return d, nil
		case api.EventDrop:
			// The server shed us. Everything it enqueued before the drop
			// was delivered in order, so its resume point must be exactly
			// our delivered vector; anything else lost a delta.
			if !api.VectorsEqual(ev.Resume, s.vector) {
				return nil, fmt.Errorf("client: drop resume %v does not match the delivered vector %v",
					ev.Resume, s.vector)
			}
			if err := s.reconnect(); err != nil {
				return nil, err
			}
		case api.EventBye:
			if ev.Reason == api.ReasonMoved && !s.c.terminalMoves {
				// A stream of this subscription was handed off to another
				// shard. Everything up to the delivered vector was
				// delivered before the move (the source seals and drains
				// before releasing), so resuming from it against the new
				// owner keeps the delta sequence contiguous — the move is
				// invisible to the caller apart from Reconnects.
				if err := s.reconnect(); err != nil {
					return nil, err
				}
				continue
			}
			s.reason = ev.Reason
			s.Close()
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("client: unexpected %q mid-subscription", ev.Type)
		}
	}
}

// reconnect re-subscribes from the last delivered vector, verifying the
// server still resolves the identical subscription.
func (s *Subscriber) reconnect() error {
	s.connMu.Lock()
	if s.resp != nil {
		s.resp.Body.Close()
		s.resp = nil
	}
	s.connMu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= s.c.retries; attempt++ {
		if s.closed.Load() {
			return errSubscriberClosed
		}
		hello, err := s.connect(s.vector.Clone())
		if err == nil {
			if !reflect.DeepEqual(hello, s.hello) {
				s.connMu.Lock()
				s.resp.Body.Close()
				s.resp = nil
				s.connMu.Unlock()
				return fmt.Errorf("client: subscription changed across reconnect: %+v != %+v", hello, s.hello)
			}
			s.reconnects++
			return nil
		}
		lastErr = err
		var typed *api.Error
		if errors.As(err, &typed) && !s.resumeRetryable(typed) {
			return err
		}
		select {
		case <-s.ctx.Done():
			return s.ctx.Err()
		case <-time.After(s.c.retryDelay(attempt, "")):
		}
	}
	return fmt.Errorf("client: subscription reconnect exhausted: %w", lastErr)
}

// resumeRetryable reports whether a typed rejection of a resume attempt
// is worth backing off on. Beyond the client's normal retry classes, a
// resume rides through not_ready and unavailable: both are the transient
// shapes of a cluster mid-transition (a handoff flipping ownership, a
// shard mid-recovery), and the resume point is durable — retrying cannot
// deliver anything twice.
func (s *Subscriber) resumeRetryable(e *api.Error) bool {
	if s.c.retryable(e) {
		return true
	}
	return e.Code == api.CodeNotReady || e.Code == api.CodeUnavailable
}

// Hello returns the server's resolved echo of the subscription.
func (s *Subscriber) Hello() *api.SubscribeHello { return s.hello }

// Vector returns the watermark vector through which deltas have been
// delivered (the resume point).
func (s *Subscriber) Vector() api.WatermarkVector { return s.vector.Clone() }

// Reassembling reports whether the subscriber tracks the full reassembled
// answer (true exactly when the subscription started from genesis).
func (s *Subscriber) Reassembling() bool { return s.reassemble }

// Items returns the reassembled ranked answer at Vector. Valid only when
// Reassembling and the subscription's form is ranked.
func (s *Subscriber) Items() []api.Item { return s.items }

// Tracks returns the reassembled tracks answer at Vector. Valid only when
// Reassembling and the subscription's form is tracks.
func (s *Subscriber) Tracks() []api.TrackItem { return s.tracks }

// Reason returns the terminal bye's reason after Recv returned io.EOF.
func (s *Subscriber) Reason() string { return s.reason }

// Reconnects counts transparent resumes (transport failures and typed
// drops) the subscriber rode through.
func (s *Subscriber) Reconnects() int { return s.reconnects }

// Close tears the subscription down; subsequent Recv calls fail. Safe to
// call from another goroutine to abort a blocked Recv, and idempotent.
func (s *Subscriber) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.connMu.Lock()
	if s.resp != nil {
		s.resp.Body.Close()
	}
	s.connMu.Unlock()
}
