package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"focus/api"
)

// rankedStub serves a fixed 12-item ranking with real server-side cursor
// paging, so the pager/collector logic is exercised against the same
// slicing rules the serve layer implements.
func rankedStub(t *testing.T, items int) *httptest.Server {
	t.Helper()
	all := make([]api.Item, items)
	for i := range all {
		all[i] = api.Item{Stream: "s", Frame: int64(i), Score: float64(items - i)}
	}
	vector := api.WatermarkVector{"s": 30}
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		var req api.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("stub decode: %v", err)
		}
		offset := 0
		if req.Cursor != "" {
			cur, err := api.DecodeCursor(req.Cursor)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeBadCursor, "%v", err)})
				return
			}
			offset = cur.Offset
		}
		page := all[min(offset, len(all)):]
		cursor := ""
		if req.Limit > 0 && req.Limit < len(page) {
			page = page[:req.Limit]
			cursor = (&api.Cursor{Expr: "car", Streams: []string{"s"}, At: vector, Offset: offset + len(page)}).Encode()
		}
		_ = json.NewEncoder(w).Encode(&api.QueryResponse{
			Expr: "car", Form: api.FormRanked, Watermarks: vector,
			Items: page, TotalItems: len(all), Cursor: cursor,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestCollectPagesReassemblesRanking(t *testing.T) {
	ts := rankedStub(t, 12)
	c := New(ts.URL)
	full, err := c.CollectPages(context.Background(), &api.QueryRequest{Expr: "car"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Items) != 12 || full.TotalItems != 12 {
		t.Fatalf("assembled %d items (total %d), want 12", len(full.Items), full.TotalItems)
	}
	for i, it := range full.Items {
		if it.Frame != int64(i) {
			t.Fatalf("item %d out of order: %+v", i, it)
		}
	}
	if full.Cursor != "" {
		t.Fatal("assembled response still carries a continuation cursor")
	}

	// The pager surfaces the same pages one at a time.
	pager := c.Pager(&api.QueryRequest{Expr: "car"}, 5)
	var sizes []int
	for pager.More() {
		page, err := pager.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(page))
	}
	if !reflect.DeepEqual(sizes, []int{5, 5, 2}) {
		t.Fatalf("page sizes %v, want [5 5 2]", sizes)
	}
	if pager.Last() == nil || pager.Last().TotalItems != 12 {
		t.Fatalf("pager's last response: %+v", pager.Last())
	}
}

// TestRetryOnOverloaded: overloaded responses are retried with backoff;
// other errors are final; draining is retried only with the opt-in.
func TestRetryOnOverloaded(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeOverloaded, "queue full")})
			return
		}
		_ = json.NewEncoder(w).Encode(&api.QueryResponse{Expr: "car", Form: api.FormRanked})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, WithRetries(5, time.Millisecond))
	if _, err := c.Query(context.Background(), &api.QueryRequest{Expr: "car"}); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 rejections + success)", calls.Load())
	}

	calls.Store(0)
	noRetry := New(ts.URL, WithRetries(0, 0))
	_, err := noRetry.Query(context.Background(), &api.QueryRequest{Expr: "car"})
	if !api.IsCode(err, api.CodeOverloaded) {
		t.Fatalf("zero-retry client: %v, want overloaded", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("zero-retry client issued %d calls", calls.Load())
	}
}

func TestDrainingToleranceOptIn(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeDraining, "draining")})
			return
		}
		_ = json.NewEncoder(w).Encode(&api.QueryResponse{Expr: "car", Form: api.FormRanked})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Without tolerance: draining is final.
	c := New(ts.URL, WithRetries(3, time.Millisecond))
	if _, err := c.Query(context.Background(), &api.QueryRequest{Expr: "car"}); !api.IsCode(err, api.CodeDraining) {
		t.Fatalf("intolerant client: %v, want draining", err)
	}
	// With tolerance: ride through.
	calls.Store(0)
	tolerant := New(ts.URL, WithRetries(3, time.Millisecond), WithDrainingTolerance())
	if _, err := tolerant.Query(context.Background(), &api.QueryRequest{Expr: "car"}); err != nil {
		t.Fatalf("tolerant client failed: %v", err)
	}
}

func TestErrorDecoding(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeBadExpr, "plan: unexpected '&'")})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Query(context.Background(), &api.QueryRequest{Expr: "car &"})
	if !api.IsCode(err, api.CodeBadExpr) {
		t.Fatalf("got %v, want bad_expr", err)
	}
}

// TestRetryHonorsRetryAfter verifies the server's Retry-After header
// overrides the computed backoff: a large base backoff would stall the test,
// but the header says come back immediately.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeOverloaded, "queue full")})
			return
		}
		_ = json.NewEncoder(w).Encode(&api.QueryResponse{Expr: "car", Form: api.FormRanked})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// A minute of base backoff: only the Retry-After override lets this
	// finish within the test deadline.
	c := New(ts.URL, WithRetries(5, time.Minute))
	start := time.Now()
	if _, err := c.Query(context.Background(), &api.QueryRequest{Expr: "car"}); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Retry-After ignored: waited %v", elapsed)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

// TestRetryDelayJitterAndCap pins the computed backoff envelope: attempt n
// waits within [d/2, d] for d = base<<n capped at maxBackoff, and a
// Retry-After HTTP-date in the past means retry now.
func TestRetryDelayJitterAndCap(t *testing.T) {
	c := New("http://unused", WithRetries(3, 100*time.Millisecond))
	for attempt := 0; attempt < 12; attempt++ {
		d := 100 * time.Millisecond << uint(attempt)
		if d > maxBackoff || d <= 0 {
			d = maxBackoff
		}
		for i := 0; i < 20; i++ {
			got := c.retryDelay(attempt, "")
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
	if got := c.retryDelay(0, "2.5"); got != 2500*time.Millisecond {
		t.Fatalf("fractional Retry-After: %v", got)
	}
	if got := c.retryDelay(0, "Mon, 02 Jan 2006 15:04:05 GMT"); got != 0 {
		t.Fatalf("past HTTP-date Retry-After: %v, want 0", got)
	}
	zero := New("http://unused", WithRetries(3, 0))
	if got := zero.retryDelay(5, ""); got != 0 {
		t.Fatalf("zero-backoff client delay: %v, want 0", got)
	}
}
