// Package client is the typed Go client of the Focus v1 wire API
// (focus/api): one client speaks to a single focus-serve process and to a
// focus-router fronting many shards identically, because both serve the
// same contract. Every in-repo consumer of the HTTP surface — the focus
// CLI's server mode, the load generator, the cluster harness — goes
// through this package, so there is exactly one implementation of URL
// construction, error decoding, retry policy, and cursor iteration.
//
// Errors are returned as *api.Error whenever the server produced one
// (branch with api.IsCode); transport failures come back as ordinary
// errors. By default the client retries overloaded (admission-control 429)
// responses with linear backoff — the one error class where an immediate
// retry is exactly right — and treats everything else as final. Opt into
// draining tolerance (WithDrainingTolerance) only for clients that are
// expected to ride through rolling restarts.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"focus/api"
)

// Client is a typed v1 API client. Create with New; the zero value is not
// usable. Clients are safe for concurrent use.
type Client struct {
	base             string
	httpc            *http.Client
	retries          int
	backoff          time.Duration
	tolerateDraining bool
	terminalMoves    bool
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (tests inject
// one; servers embedding the client tune transports).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithRetries sets how many times a retryable response (overloaded; plus
// draining, with WithDrainingTolerance) is retried, and the base backoff
// between attempts. The wait doubles each attempt and is jittered across
// [wait/2, wait] so clients rejected together do not retry together; a
// server-sent Retry-After overrides the computed wait. Zero retries makes
// every response final — load generators use this to observe raw 429s.
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = n, backoff }
}

// WithDrainingTolerance makes draining responses retryable like
// overloaded ones: the client backs off and retries, riding through a
// rolling restart instead of failing. Off by default — in steady state a
// draining response is as unexpected as any other 5xx.
func WithDrainingTolerance() Option {
	return func(c *Client) { c.tolerateDraining = true }
}

// WithTerminalMoves makes a Subscriber return a "moved" bye terminally
// (Recv returns io.EOF with Reason moved) instead of transparently
// re-subscribing. The default transparent resume assumes the base URL can
// re-resolve stream ownership — true when it points at a router. A caller
// connected directly to one shard cannot reach the new owner by
// reconnecting, so it opts out and handles the move itself; the router
// uses this for its per-shard subscription legs.
func WithTerminalMoves() Option {
	return func(c *Client) { c.terminalMoves = true }
}

// New builds a client for the service at baseURL (e.g.
// "http://127.0.0.1:7070", no trailing slash required).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		httpc:   http.DefaultClient,
		retries: 3,
		backoff: 50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the service root this client targets.
func (c *Client) BaseURL() string { return c.base }

// Query executes one QueryRequest against POST /v1/query and returns the
// typed response. Server-side failures return *api.Error.
func (c *Client) Query(ctx context.Context, req *api.QueryRequest) (*api.QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var out api.QueryResponse
	if err := c.do(ctx, http.MethodPost, api.PathQuery, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Streams fetches GET /v1/streams: per-stream ingest status, shard-
// annotated when the target is a router.
func (c *Client) Streams(ctx context.Context) ([]api.StreamStatus, error) {
	var out []api.StreamStatus
	if err := c.do(ctx, http.MethodGet, api.PathStreams, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches GET /v1/stats as raw JSON. The payload shape is
// deployment-specific (focus-serve and focus-router report different
// counter sets); callers decode the fields they need.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.do(ctx, http.MethodGet, api.PathStats, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthz probes GET /healthz and returns the reported status string
// ("ok", "degraded", "draining", …). A non-2xx health answer still
// returns the status with a nil error when the body carries one — health
// probing distinguishes states, it does not fail on them; transport
// failures return an error.
func (c *Client) Healthz(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	var h struct {
		Status string `json:"status"`
	}
	if json.Unmarshal(body, &h) == nil && h.Status != "" {
		return h.Status, nil
	}
	return "", api.DecodeError(resp.StatusCode, body)
}

// Drain POSTs /drain, taking the target out of rotation (new queries are
// rejected with code draining until the process restarts).
func (c *Client) Drain(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/drain", nil, nil)
}

// retryable reports whether the client should back off and retry.
func (c *Client) retryable(e *api.Error) bool {
	if e.Code == api.CodeOverloaded {
		return true
	}
	return c.tolerateDraining && e.Code == api.CodeDraining
}

// maxBackoff caps the exponential growth of retry waits.
const maxBackoff = 5 * time.Second

// retryDelay computes the wait before retrying after the given 0-based
// attempt. A server-sent Retry-After (delta-seconds or HTTP-date) wins;
// otherwise the base backoff doubles per attempt, capped, with full jitter
// over the upper half of the window — a fleet of clients rejected by the
// same admission spike must not come back as the same spike.
func (c *Client) retryDelay(attempt int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.ParseFloat(retryAfter, 64); err == nil && secs >= 0 {
			return time.Duration(secs * float64(time.Second))
		}
		if when, err := http.ParseTime(retryAfter); err == nil {
			if d := time.Until(when); d > 0 {
				return d
			}
			return 0
		}
	}
	if c.backoff <= 0 {
		return 0
	}
	d := c.backoff << uint(attempt)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// do runs one HTTP exchange with the retry policy, decoding a 2xx body
// into out (when non-nil) and a non-2xx body into an *api.Error.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			return err
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("client: reading %s body: %w", path, err)
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(respBody, out); err != nil {
				return fmt.Errorf("client: decoding %s response: %w", path, err)
			}
			return nil
		}
		apiErr := api.DecodeError(resp.StatusCode, respBody)
		if attempt >= c.retries || !c.retryable(apiErr) {
			return apiErr
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.retryDelay(attempt, resp.Header.Get("Retry-After"))):
		}
	}
}
