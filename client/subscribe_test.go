package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"focus/api"
)

// subscribeScript is one scripted server-side connection: assert the
// resume vector the client sent, then play frames.
type subscribeScript func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest)

// subscribeStub plays one script per connection, in order.
func subscribeStub(t *testing.T, scripts ...subscribeScript) *httptest.Server {
	t.Helper()
	var conn atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathSubscribe, func(w http.ResponseWriter, r *http.Request) {
		var req api.SubscribeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("stub decode: %v", err)
			return
		}
		i := int(conn.Add(1)) - 1
		if i >= len(scripts) {
			t.Errorf("unexpected connection %d", i+1)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		scripts[i](t, w, &req)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func sendFrame(t *testing.T, w http.ResponseWriter, ev *api.SubscribeEvent) {
	t.Helper()
	frame, err := api.EncodeSSEFrame(ev)
	if err != nil {
		t.Errorf("stub encode: %v", err)
		return
	}
	if _, err := w.Write(frame); err != nil {
		return
	}
	w.(http.Flusher).Flush()
}

func stubHello() *api.SubscribeHello {
	return &api.SubscribeHello{Expr: "(car&person)", Form: api.FormRanked, Streams: []string{"s"}}
}

func wantFrom(t *testing.T, req *api.SubscribeRequest, want api.WatermarkVector) {
	t.Helper()
	if len(want) == 0 {
		if len(req.From) != 0 {
			t.Errorf("connection resumed from %v, want genesis", req.From)
		}
		return
	}
	if !api.VectorsEqual(req.From, want) {
		t.Errorf("connection resumed from %v, want %v", req.From, want)
	}
}

var (
	itemA = api.Item{Stream: "s", Frame: 30, TimeSec: 1, Segment: 1, Score: 5}
	itemB = api.Item{Stream: "s", Frame: 60, TimeSec: 2, Segment: 2, Score: 3}
	itemC = api.Item{Stream: "s", Frame: 90, TimeSec: 3, Segment: 3, Score: 4}
	itemD = api.Item{Stream: "s", Frame: 120, TimeSec: 4, Segment: 4, Score: 2}
)

func vec(at float64) api.WatermarkVector { return api.WatermarkVector{"s": at} }

// TestSubscriberResumesThroughFailures is the client-side resume
// contract: across an abrupt transport loss, a typed slow-consumer drop,
// and a handoff's moved bye, the subscriber reconnects with From at its
// delivered vector and the caller observes one contiguous, fully
// applicable delta sequence.
func TestSubscriberResumesThroughFailures(t *testing.T) {
	srv := subscribeStub(t,
		func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			wantFrom(t, req, nil)
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: &api.Delta{
				From: vec(0), To: vec(5), Items: []api.Item{itemA}, TotalItems: 1}})
			// Abrupt end, no terminal event: a transport failure.
		},
		func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			wantFrom(t, req, vec(5))
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: &api.Delta{
				From: vec(5), To: vec(10), Items: []api.Item{itemB}, TotalItems: 2}})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDrop,
				Reason: api.ReasonSlowConsumer, Resume: vec(10)})
		},
		func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			wantFrom(t, req, vec(10))
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: &api.Delta{
				From: vec(10), To: vec(15), Items: []api.Item{itemC}, RemovedItems: []api.Item{itemA},
				TotalItems: 2}})
			// The stream was handed off to another shard: the typed moved
			// bye asks the subscriber to re-resolve and resume.
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonMoved})
		},
		func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			wantFrom(t, req, vec(15))
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: &api.Delta{
				From: vec(15), To: vec(20), Items: []api.Item{itemD}, TotalItems: 3}})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonComplete})
		},
	)
	sub, err := New(srv.URL, WithRetries(2, time.Millisecond)).
		Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car & person"})
	if err != nil {
		t.Fatal(err)
	}
	var got []*api.Delta
	for {
		d, err := sub.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, d)
	}
	if len(got) != 4 {
		t.Fatalf("received %d deltas, want 4", len(got))
	}
	if sub.Reason() != api.ReasonComplete {
		t.Fatalf("terminal reason %q, want complete", sub.Reason())
	}
	if sub.Reconnects() != 3 {
		t.Fatalf("reconnects = %d, want 3", sub.Reconnects())
	}
	if !sub.Reassembling() {
		t.Fatal("genesis subscription must reassemble")
	}
	if want := []api.Item{itemC, itemB, itemD}; !reflect.DeepEqual(sub.Items(), want) {
		t.Fatalf("reassembled items = %+v, want %+v", sub.Items(), want)
	}
	if !api.VectorsEqual(sub.Vector(), vec(20)) {
		t.Fatalf("final vector = %v, want {s:20}", sub.Vector())
	}
}

// TestSubscriberTerminalMoves pins WithTerminalMoves: a moved bye ends
// the subscription (Recv returns EOF, Reason reports moved) instead of
// transparently re-subscribing — the router's per-shard legs need the
// move surfaced, since reconnecting to the same shard cannot re-resolve
// ownership.
func TestSubscriberTerminalMoves(t *testing.T) {
	srv := subscribeStub(t,
		func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: &api.Delta{
				From: vec(0), To: vec(5), Items: []api.Item{itemA}, TotalItems: 1}})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonMoved})
		},
	)
	sub, err := New(srv.URL, WithRetries(2, time.Millisecond), WithTerminalMoves()).
		Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car & person"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Recv(); err != io.EOF {
		t.Fatalf("after moved bye: %v, want EOF", err)
	}
	if sub.Reason() != api.ReasonMoved {
		t.Fatalf("reason = %q, want moved", sub.Reason())
	}
	if sub.Reconnects() != 0 {
		t.Fatalf("reconnects = %d, want 0 (the move must be terminal)", sub.Reconnects())
	}
}

// TestSubscriberMidStreamResume pins that an explicit From skips
// reassembly but still verifies contiguity from that point.
func TestSubscriberMidStreamResume(t *testing.T) {
	srv := subscribeStub(t,
		func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			wantFrom(t, req, vec(5))
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: &api.Delta{
				From: vec(5), To: vec(10), Items: []api.Item{itemB}, TotalItems: 2}})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonDraining})
		},
	)
	sub, err := New(srv.URL, WithRetries(0, 0)).
		Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car & person", From: vec(5)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sub.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !api.VectorsEqual(d.From, vec(5)) || !api.VectorsEqual(d.To, vec(10)) {
		t.Fatalf("delta = (%v → %v)", d.From, d.To)
	}
	if sub.Reassembling() || sub.Items() != nil {
		t.Fatal("mid-stream resume must not claim a full reassembly")
	}
	if _, err := sub.Recv(); err != io.EOF {
		t.Fatalf("after bye: %v, want EOF", err)
	}
	if sub.Reason() != api.ReasonDraining {
		t.Fatalf("reason = %q, want draining", sub.Reason())
	}
}

// TestSubscriberProtocolViolations pins that a forged or broken server
// cannot corrupt the subscriber: gappy deltas, wrong drop resume points,
// and a subscription that changes identity across a reconnect all fail
// loudly instead of being applied.
func TestSubscriberProtocolViolations(t *testing.T) {
	t.Run("gappy delta", func(t *testing.T) {
		srv := subscribeStub(t, func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDelta, Delta: &api.Delta{
				From: vec(3), To: vec(5), Items: []api.Item{itemA}, TotalItems: 1}})
		})
		sub, err := New(srv.URL, WithRetries(0, 0)).
			Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car & person"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sub.Recv(); err == nil {
			t.Fatal("a delta not continuing the delivered vector was accepted")
		}
	})
	t.Run("drop resume mismatch", func(t *testing.T) {
		srv := subscribeStub(t, func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventDrop,
				Reason: api.ReasonSlowConsumer, Resume: vec(7)})
		})
		sub, err := New(srv.URL, WithRetries(0, 0)).
			Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car & person"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sub.Recv(); err == nil {
			t.Fatal("a drop whose resume point skips deltas was accepted")
		}
	})
	t.Run("hello drift", func(t *testing.T) {
		changed := stubHello()
		changed.TopK = 9
		srv := subscribeStub(t,
			func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
				sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
			},
			func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
				sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: changed})
			},
		)
		sub, err := New(srv.URL, WithRetries(0, 0)).
			Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car & person"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sub.Recv(); err == nil {
			t.Fatal("a subscription changing identity across reconnect was accepted")
		}
	})
}

// TestSubscribeTypedRejection pins that pre-stream server rejections come
// back as *api.Error.
func TestSubscribeTypedRejection(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathSubscribe, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeBadExpr, "nope")})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	_, err := New(srv.URL, WithRetries(0, 0)).
		Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car &"})
	if !api.IsCode(err, api.CodeBadExpr) {
		t.Fatalf("err = %v, want bad_expr", err)
	}
}

// TestSubscriberClose pins that Close aborts a blocked Recv from another
// goroutine.
func TestSubscriberClose(t *testing.T) {
	release := make(chan struct{})
	srv := subscribeStub(t, func(t *testing.T, w http.ResponseWriter, req *api.SubscribeRequest) {
		sendFrame(t, w, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: stubHello()})
		<-release // hold the stream open with no frames
	})
	defer close(release)
	sub, err := New(srv.URL, WithRetries(0, 0)).
		Subscribe(context.Background(), &api.SubscribeRequest{Expr: "car & person"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sub.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("Recv after Close = %v, want an error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
	sub.Close() // idempotent
}
