package focus

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"focus/internal/index"
	"focus/internal/ingest"
	"focus/internal/query"
	"focus/internal/tune"
	"focus/internal/video"
	"focus/internal/vision"
)

// This file implements durable live ingestion: watermark-keyed checkpoints
// of an in-flight ingestion, and cold-start restore that resumes the tail.
//
// A checkpoint round appends to the store, in order: the cluster records
// spilled since the previous round (SaveDelta), then one snapshot record
// carrying the watermark, the tuner's chosen configuration, and the ingest
// worker's full mid-stream state — then syncs. The snapshot record is the
// commit point: the store is an append-only checksummed log whose recovery
// truncates at most a torn tail, so the latest intact snapshot record always
// refers to cluster records that landed before it. Cluster records from a
// round whose snapshot never landed are ignored at load (LoadBounded) and
// regenerated bit-identically by the deterministic tail replay, under the
// same IDs and therefore the same keys.
//
// Restore rebuilds the session exactly as the checkpoint captured it —
// index, query engine, clustering engine (active-set order preserved),
// pixel-diff association table, stats, watermark — and restarts the
// generator skipping every frame the snapshot had already processed. From
// there the ingestion is byte-for-byte the same computation the uncrashed
// process would have performed: answers at any watermark are bit-identical.

// snapKey is the store key holding a stream's live-checkpoint snapshot
// record.
func snapKey(stream string) string { return "focus/snap/" + stream }

// modelSpec persists enough of a vision.Model to rebuild it exactly.
// Specialized models are trained per stream and do not live in the Zoo, so a
// name lookup cannot restore them; NewModel re-derives every cost and
// quality parameter deterministically from this configuration.
type modelSpec struct {
	Name           string
	Family         vision.ArchFamily
	Layers         int
	InputRes       int
	Specialized    bool
	SpecialClasses []vision.ClassID
}

func specOf(m *vision.Model) modelSpec {
	return modelSpec{
		Name:           m.Name,
		Family:         m.Family,
		Layers:         m.Layers,
		InputRes:       m.InputRes,
		Specialized:    m.Specialized,
		SpecialClasses: append([]vision.ClassID(nil), m.SpecialClasses...),
	}
}

func (s modelSpec) build() *vision.Model {
	var special []vision.ClassID
	if s.Specialized {
		special = s.SpecialClasses
	}
	return vision.NewModel(s.Name, s.Family, s.Layers, s.InputRes, special)
}

// chosenSpec persists the tuner's chosen candidate so a restored session
// reports the same configuration (and would rebuild the same ingest worker)
// without re-running the sweep.
type chosenSpec struct {
	Model        modelSpec
	Ls           int
	K            int
	T            float64
	EstRecall    float64
	EstPrecision float64
	NormIngest   float64
	NormQuery    float64
}

func chosenOf(c tune.Candidate) chosenSpec {
	return chosenSpec{
		Model:        specOf(c.Model),
		Ls:           c.Ls,
		K:            c.K,
		T:            c.T,
		EstRecall:    c.EstRecall,
		EstPrecision: c.EstPrecision,
		NormIngest:   c.NormIngest,
		NormQuery:    c.NormQuery,
	}
}

func (s chosenSpec) build(m *vision.Model) tune.Candidate {
	return tune.Candidate{
		Model:        m,
		Ls:           s.Ls,
		K:            s.K,
		T:            s.T,
		EstRecall:    s.EstRecall,
		EstPrecision: s.EstPrecision,
		NormIngest:   s.NormIngest,
		NormQuery:    s.NormQuery,
	}
}

// liveSnapshot is the gob-encoded snapshot record of one checkpoint round.
type liveSnapshot struct {
	Stream    string
	Watermark float64
	GenOpts   video.GenOptions
	Chosen    chosenSpec
	// IndexNextID is the index's cluster-ID high-water mark at snapshot
	// time: exactly the records SaveDelta rounds up to this one have
	// committed. LoadBounded restores records below it and no others.
	IndexNextID index.ClusterID
	// IngestSec is the index's ingest clock (the SealSec a cluster spilled
	// next would receive).
	IngestSec float64
	// Done marks a checkpoint taken after the live window finished: the
	// index is complete and restore needs no worker or generator.
	Done   bool
	Worker ingest.WorkerSnapshot
}

// CheckpointLive persists a consistent cut of a live ingestion: every
// cluster sealed at or below the current watermark plus the worker state
// needed to resume past it. It must be called from the session's ingester
// goroutine between AdvanceLive calls (the only vantage from which the
// worker is quiescent). Durable once it returns: the store has been synced.
// On a system without a persistent store the cut still lands in the
// embedded in-memory store — not crash-durable, but a consistent snapshot
// the stream-handoff path can export.
func (sess *Session) CheckpointLive() error {
	sess.mu.RLock()
	live := sess.live
	sess.mu.RUnlock()
	if live == nil {
		return fmt.Errorf("focus: stream %q has no live ingestion", sess.Name())
	}
	if live.worker == nil {
		// A Done-restored session has nothing left to checkpoint.
		return nil
	}
	wsnap, err := live.worker.Snapshot()
	if err != nil {
		return err
	}
	sess.mu.RLock()
	wm := sess.watermark
	opts := sess.genOpts
	sel := sess.selection
	done := live.done
	sess.mu.RUnlock()
	if sel == nil {
		return fmt.Errorf("focus: stream %q has no selection to checkpoint", sess.Name())
	}
	ix := live.worker.Index()
	next, err := ix.SaveDelta(sess.sys.store, live.savedID)
	if err != nil {
		return fmt.Errorf("focus: checkpointing %q: %w", sess.Name(), err)
	}
	snap := liveSnapshot{
		Stream:      sess.Name(),
		Watermark:   wm,
		GenOpts:     opts,
		Chosen:      chosenOf(sel.Chosen),
		IndexNextID: next,
		IngestSec:   ix.IngestSec(),
		Done:        done,
		Worker:      wsnap,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("focus: encode snapshot for %q: %w", sess.Name(), err)
	}
	if err := sess.sys.store.Put(snapKey(sess.Name()), buf.Bytes()); err != nil {
		return fmt.Errorf("focus: checkpointing %q: %w", sess.Name(), err)
	}
	if err := sess.sys.store.Sync(); err != nil {
		return fmt.Errorf("focus: checkpointing %q: %w", sess.Name(), err)
	}
	live.savedID = next
	return nil
}

// clearLiveCheckpoint removes any live-checkpoint snapshot record, so a
// subsequent cold start does not resurrect a superseded live state (a
// one-shot Ingest replaces the whole index).
func (sess *Session) clearLiveCheckpoint() error {
	_, ok := sess.sys.store.Get(snapKey(sess.Name()))
	if !ok {
		return nil
	}
	return sess.sys.store.Delete(snapKey(sess.Name()))
}

// HasLiveCheckpoint reports whether the store holds a live checkpoint for
// this stream.
func (sess *Session) HasLiveCheckpoint() bool {
	_, ok := sess.sys.store.Get(snapKey(sess.Name()))
	return ok
}

// RestoreLive cold-starts the session from its latest checkpoint: the index
// is loaded up to the committed high-water mark, the worker resumes exactly
// where the snapshot cut it, and the generator replays only the tail (frames
// the snapshot had not processed). It returns false when the store holds no
// checkpoint for this stream — the caller should fall back to Tune +
// StartLive. Restored state answers queries bit-identically to a process
// that never crashed.
func (sess *Session) RestoreLive() (bool, error) {
	if sess.isLive() {
		return false, fmt.Errorf("focus: stream %q is already ingesting live", sess.Name())
	}
	raw, ok := sess.sys.store.Get(snapKey(sess.Name()))
	if !ok {
		return false, nil
	}
	var snap liveSnapshot
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		return false, fmt.Errorf("focus: decode snapshot for %q: %w", sess.Name(), err)
	}
	if snap.Stream != sess.Name() {
		return false, fmt.Errorf("focus: snapshot stream %q does not match session %q", snap.Stream, sess.Name())
	}
	model := snap.Chosen.Model.build()
	sel := &tune.Selection{Chosen: snap.Chosen.build(model)}
	ix, err := index.LoadBounded(sess.sys.store, sess.Name(), snap.IndexNextID)
	if err != nil {
		return false, fmt.Errorf("focus: restoring %q: %w", sess.Name(), err)
	}
	ix.SetIngestSec(snap.IngestSec)
	engine, err := query.NewEngine(ix, sess.sys.zoo.GT, sess.sys.space,
		sess.gtFunc(), &sess.sys.meter)
	if err != nil {
		return false, err
	}

	if snap.Done {
		// The window completed before the crash: the checkpoint holds the
		// finished index. No worker, no generator; AdvanceLive returns
		// immediately and StopLive drains an already-closed channel.
		frames := make(chan *video.Frame)
		close(frames)
		live := &liveState{
			frames:  frames,
			genErr:  make(chan error, 1),
			stop:    make(chan struct{}),
			horizon: snap.GenOpts.DurationSec,
			done:    true,
			savedID: snap.IndexNextID,
		}
		sess.mu.Lock()
		sess.selection = sel
		sess.ix = ix
		sess.engine = engine
		sess.genOpts = snap.GenOpts
		sess.stats = snap.Worker.Stats
		sess.watermark = snap.Watermark
		sess.live = live
		sess.mu.Unlock()
		return true, nil
	}

	st, err := sess.freshStream()
	if err != nil {
		return false, err
	}
	worker, err := ingest.RestoreWorker(st, sess.sys.space, model, &sess.sys.meter, ix, snap.Worker)
	if err != nil {
		return false, fmt.Errorf("focus: restoring %q: %w", sess.Name(), err)
	}
	live := &liveState{
		worker:  worker,
		frames:  make(chan *video.Frame, 64),
		genErr:  make(chan error, 1),
		stop:    make(chan struct{}),
		horizon: snap.GenOpts.DurationSec,
		savedID: snap.IndexNextID,
	}
	sess.mu.Lock()
	if sess.live != nil {
		sess.mu.Unlock()
		return false, fmt.Errorf("focus: stream %q started ingesting live mid-restore", sess.Name())
	}
	sess.selection = sel
	sess.ix = ix
	sess.engine = engine
	sess.genOpts = snap.GenOpts
	sess.stats = snap.Worker.Stats
	sess.watermark = snap.Watermark
	sess.live = live
	sess.mu.Unlock()
	// Replay the deterministic stream, dropping every frame the snapshot
	// already processed. Frame IDs advance by the sampling stride with no
	// gaps, so the first delivered frame is exactly one stride past the
	// snapshot's PrevFrameID — the pixel-diff association table restored
	// above is describing its true predecessor frame and stays hot across
	// the restart.
	prevID := snap.Worker.PrevFrameID
	go func() {
		err := st.Generate(snap.GenOpts, func(f *video.Frame) error {
			if f.ID <= prevID {
				return nil
			}
			select {
			case live.frames <- f:
				return nil
			case <-live.stop:
				return errLiveStopped
			}
		})
		close(live.frames)
		live.genErr <- err
	}()
	return true, nil
}
