// Package focus is a reproduction of "Focus: Querying Large Video Datasets
// with Low Latency and Low Cost" (Hsieh et al., OSDI 2018).
//
// Focus answers "after-the-fact" queries of the form find all frames that
// contain objects of class X over large recorded video datasets. It splits
// the work between ingest time and query time:
//
//   - At ingest time, a cheap, stream-specialized CNN classifies every
//     moving object, visually similar objects are clustered, and each
//     cluster is indexed under its top-K most likely classes.
//   - At query time, only the matching clusters' centroid objects are
//     verified with the expensive ground-truth CNN, and the frames of
//     confirmed clusters are returned.
//
// The package wires together the substrates in internal/…: a simulated CNN
// stack standing in for ResNet152 and its compressed/specialized variants
// (Go has no production DL runtime; see DESIGN.md for the substitution
// argument), a synthetic stream generator mirroring the paper's Table 1,
// background subtraction, single-pass clustering, the top-K index with an
// embedded KV store, the parameter tuner, and GPU cost accounting.
//
// Typical use:
//
//	sys, _ := focus.New(focus.Config{})
//	sess, _ := sys.AddTable1Stream("auburn_c")
//	sess.Ingest(focus.GenOptions{DurationSec: 600, SampleEvery: 1})
//	res, _ := sys.Query(focus.Query{Class: "car"})
package focus

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"focus/internal/gpu"
	"focus/internal/kvstore"
	"focus/internal/tune"
	"focus/internal/video"
	"focus/internal/vision"
)

// Re-exported types so applications only import the root package.
type (
	// StreamSpec describes one video stream (see video.StreamSpec).
	StreamSpec = video.StreamSpec
	// GenOptions controls a generation/ingestion window.
	GenOptions = video.GenOptions
	// Policy selects a point on the ingest/query trade-off (§4.4).
	Policy = tune.Policy
	// Targets are the accuracy floors queries must meet.
	Targets = tune.Targets
)

// The three trade-off policies of §4.4.
const (
	Balance   = tune.Balance
	OptIngest = tune.OptIngest
	OptQuery  = tune.OptQuery
)

// Config configures a Focus system.
type Config struct {
	// Seed makes the whole system (streams, CNNs) deterministic.
	// Zero means seed 1.
	Seed uint64
	// Targets are the precision/recall floors (default 95/95, §6.1).
	Targets Targets
	// Policy is the ingest/query trade-off policy (default Balance).
	Policy Policy
	// NumGPUs is the query-time GPU parallelism (default 10, matching the
	// paper's "with a 10-GPU cluster" reporting).
	NumGPUs int
	// StorePath persists the top-K indexes to an embedded store; empty
	// keeps them in memory.
	StorePath string
	// TuneOptions overrides the parameter-search space; nil uses defaults.
	TuneOptions *tune.Options
	// GPUPace, when non-zero, makes every simulated GPU millisecond cost
	// this much real wall-clock time on the goroutine doing the work.
	// Results are unaffected; only elapsed time changes. The scaling
	// benchmarks use it to measure how the parallel execution layer
	// overlaps per-stream GPU stalls (§5: "the slowest stream bounds"
	// query latency).
	GPUPace time.Duration
}

// DefaultNumGPUs is the default query-time GPU parallelism.
const DefaultNumGPUs = 10

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Targets == (Targets{}) {
		c.Targets = tune.DefaultTargets
	}
	if c.Policy == "" {
		c.Policy = Balance
	}
	if c.NumGPUs <= 0 {
		c.NumGPUs = DefaultNumGPUs
	}
}

// System is a Focus deployment: a shared feature space and model zoo, plus
// one ingestion session per video stream.
type System struct {
	cfg   Config
	space *vision.Space
	zoo   *vision.Zoo
	store *kvstore.Store
	meter gpu.Meter

	// sessionMu guards the registry itself; each Session guards its own
	// mutable state. A long-running service adds streams and serves queries
	// concurrently, so registry reads must never race registrations.
	sessionMu sync.RWMutex
	sessions  map[string]*Session
}

// New creates a system.
func New(cfg Config) (*System, error) {
	cfg.applyDefaults()
	store, err := kvstore.Open(cfg.StorePath)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:      cfg,
		space:    vision.NewSpace(cfg.Seed),
		zoo:      vision.NewZoo(),
		store:    store,
		sessions: make(map[string]*Session),
	}
	s.meter.SetPace(cfg.GPUPace)
	return s, nil
}

// Close releases the embedded store.
func (s *System) Close() error { return s.store.Close() }

// Persistent reports whether the system writes its indexes and live
// checkpoints to a durable on-disk store (Config.StorePath was set).
func (s *System) Persistent() bool { return s.cfg.StorePath != "" }

// Abandon drops the embedded store on the floor: the descriptor is closed
// without flushing buffered writes or syncing, exactly what a SIGKILL does
// to the process. Chaos harnesses use it to simulate a crash in-process;
// everything since the last Sync is lost, and recovery must come from the
// latest durable checkpoint.
func (s *System) Abandon() error { return s.store.Abandon() }

// Space exposes the shared class/feature space (class names, prototypes).
func (s *System) Space() *vision.Space { return s.space }

// Zoo exposes the model zoo (the GT-CNN and the compression ladder).
func (s *System) Zoo() *vision.Zoo { return s.zoo }

// GPUMeter returns a snapshot of the accumulated simulated GPU time.
func (s *System) GPUMeter() gpu.Snapshot { return s.meter.Snapshot() }

// AddStream registers a stream for ingestion. Safe to call while other
// streams are being ingested or queried.
func (s *System) AddStream(spec StreamSpec) (*Session, error) {
	st, err := video.NewStream(spec, s.space, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.sessionMu.Lock()
	defer s.sessionMu.Unlock()
	if _, dup := s.sessions[spec.Name]; dup {
		return nil, fmt.Errorf("focus: stream %q already added", spec.Name)
	}
	sess := &Session{sys: s, stream: st}
	s.sessions[spec.Name] = sess
	return sess, nil
}

// AddTable1Stream registers one of the paper's Table 1 stream presets.
func (s *System) AddTable1Stream(name string) (*Session, error) {
	spec, ok := video.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("focus: no Table 1 stream named %q", name)
	}
	return s.AddStream(spec)
}

// Session returns the session for a stream name, or nil.
func (s *System) Session(name string) *Session {
	s.sessionMu.RLock()
	defer s.sessionMu.RUnlock()
	return s.sessions[name]
}

// Sessions returns all sessions sorted by stream name.
func (s *System) Sessions() []*Session {
	s.sessionMu.RLock()
	defer s.sessionMu.RUnlock()
	names := make([]string, 0, len(s.sessions))
	for n := range s.sessions {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Session, len(names))
	for i, n := range names {
		out[i] = s.sessions[n]
	}
	return out
}

// Watermarks returns every session's current ingest watermark keyed by
// stream name: the consistent frame horizon a cross-stream query can be
// pinned to via Query.AtWatermarks.
func (s *System) Watermarks() map[string]float64 {
	out := make(map[string]float64)
	for _, sess := range s.Sessions() {
		out[sess.Name()] = sess.Watermark()
	}
	return out
}

// ClassID resolves a class name ("car", "person", "OTHER") to its ID.
func (s *System) ClassID(name string) (vision.ClassID, error) {
	id, ok := s.space.ClassByName(name)
	if !ok {
		return 0, fmt.Errorf("focus: unknown class %q", name)
	}
	return id, nil
}
