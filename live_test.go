package focus

import (
	"sync"
	"testing"

	"focus/internal/tune"
)

// liveTuneOptions is a trimmed sweep so live-ingest tests spend their time
// on ingestion and querying, not parameter search.
func liveTuneOptions() *tune.Options {
	o := tune.DefaultOptions()
	o.LsCandidates = []int{20}
	o.TCandidates = []float64{2.5, 3.0}
	o.KCandidates = []int{4, 16, 60}
	o.MaxSampleSightings = 800
	return &o
}

func liveTestConfig() Config {
	return Config{
		Targets:     Targets{Recall: 0.7, Precision: 0.7},
		TuneOptions: liveTuneOptions(),
	}
}

// TestLiveMatchesOneShotIngest replays the same stream twice — once as a
// one-shot Ingest, once live in uneven chunks — and requires bit-identical
// indexes and query answers at the final watermark. Chunking must be
// invisible: SealSec stamps derive from frame times, not from where
// AdvanceLive happened to pause.
func TestLiveMatchesOneShotIngest(t *testing.T) {
	const window = 60
	opts := GenOptions{DurationSec: window, SampleEvery: 1}

	oneShot := newTestSystem(t, liveTestConfig())
	oneSess, err := oneShot.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := oneSess.Ingest(opts); err != nil {
		t.Fatal(err)
	}

	live := newTestSystem(t, liveTestConfig())
	liveSess, err := live.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	liveSess.UseSelection(oneSess.Selection())
	if err := liveSess.StartLive(opts); err != nil {
		t.Fatal(err)
	}
	defer liveSess.StopLive()
	// Uneven chunks, including a boundary falling exactly on a frame time
	// (30.0s) and one past the horizon.
	for _, to := range []float64{7.3, 30, 30, 45.5, 65} {
		if _, err := liveSess.AdvanceLive(to); err != nil {
			t.Fatal(err)
		}
	}
	if !liveSess.LiveDone() {
		t.Fatal("live ingest did not finish")
	}
	if got := liveSess.Watermark(); got != window {
		t.Fatalf("final watermark %v, want %v", got, window)
	}

	if a, b := oneSess.IngestStats(), liveSess.IngestStats(); a != b {
		t.Errorf("ingest stats diverge: one-shot %+v, live %+v", a, b)
	}
	if a, b := oneSess.Index().NumClusters(), liveSess.Index().NumClusters(); a != b {
		t.Errorf("cluster counts diverge: one-shot %d, live %d", a, b)
	}

	for _, class := range []string{"car", "person", "truck"} {
		id, err := oneShot.ClassID(class)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oneSess.QueryClass(id, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := liveSess.QueryClass(id, QueryOptions{AtSec: window})
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Frames) != len(got.Frames) ||
			want.ExaminedClusters != got.ExaminedClusters ||
			want.MatchedClusters != got.MatchedClusters {
			t.Errorf("class %s: one-shot (%d frames, %d/%d clusters) vs live (%d frames, %d/%d clusters)",
				class, len(want.Frames), want.MatchedClusters, want.ExaminedClusters,
				len(got.Frames), got.MatchedClusters, got.ExaminedClusters)
			continue
		}
		for i := range want.Frames {
			if want.Frames[i] != got.Frames[i] {
				t.Errorf("class %s: frame[%d] %d vs %d", class, i, want.Frames[i], got.Frames[i])
				break
			}
		}
	}
}

// TestWatermarkQueriesArePure pins queries to a historical watermark while
// ingestion keeps advancing: the answer must never change, and the horizon
// may only grow results monotonically.
func TestWatermarkQueriesArePure(t *testing.T) {
	sys := newTestSystem(t, liveTestConfig())
	sess, err := sys.AddTable1Stream("jacksonh")
	if err != nil {
		t.Fatal(err)
	}
	opts := GenOptions{DurationSec: 80, SampleEvery: 1}
	if err := sess.StartLive(opts); err != nil {
		t.Fatal(err)
	}
	defer sess.StopLive()
	id, err := sys.ClassID("car")
	if err != nil {
		t.Fatal(err)
	}

	w1, err := sess.AdvanceLive(40)
	if err != nil {
		t.Fatal(err)
	}
	atW1, err := sess.QueryClass(id, QueryOptions{AtSec: w1})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sess.AdvanceLive(80); err != nil {
		t.Fatal(err)
	}
	replay, err := sess.QueryClass(id, QueryOptions{AtSec: w1})
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Frames) != len(atW1.Frames) ||
		replay.ExaminedClusters != atW1.ExaminedClusters ||
		replay.MatchedClusters != atW1.MatchedClusters {
		t.Errorf("query at watermark %v changed after ingest advanced: %d frames (%d/%d) vs %d frames (%d/%d)",
			w1, len(replay.Frames), replay.MatchedClusters, replay.ExaminedClusters,
			len(atW1.Frames), atW1.MatchedClusters, atW1.ExaminedClusters)
	}
	for i := range replay.Frames {
		if replay.Frames[i] != atW1.Frames[i] {
			t.Fatalf("frame[%d] changed: %d vs %d", i, replay.Frames[i], atW1.Frames[i])
		}
	}

	atEnd, err := sess.QueryClass(id, QueryOptions{AtSec: sess.Watermark()})
	if err != nil {
		t.Fatal(err)
	}
	if len(atEnd.Frames) < len(atW1.Frames) || atEnd.ExaminedClusters < atW1.ExaminedClusters {
		t.Errorf("horizon growth lost results: %d frames at %v, %d at %v",
			len(atW1.Frames), w1, len(atEnd.Frames), sess.Watermark())
	}
}

// TestConcurrentQueryDuringLiveIngest races many query goroutines against a
// live ingester under -race, each pinned to the watermark it snapshotted,
// re-checking its answer after ingest has moved on.
func TestConcurrentQueryDuringLiveIngest(t *testing.T) {
	sys := newTestSystem(t, liveTestConfig())
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.StartLive(GenOptions{DurationSec: 60, SampleEvery: 1}); err != nil {
		t.Fatal(err)
	}
	defer sess.StopLive()
	id, err := sys.ClassID("car")
	if err != nil {
		t.Fatal(err)
	}

	type pinned struct {
		at     float64
		frames int
	}
	var mu sync.Mutex
	var observations []pinned
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				at := sess.Watermark()
				opts := QueryOptions{AtSec: at}
				if at <= 0 {
					opts.AtSec = -1
				}
				res, err := sess.QueryClass(id, opts)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				observations = append(observations, pinned{at, len(res.Frames)})
				mu.Unlock()
			}
		}()
	}

	for !sess.LiveDone() {
		if _, err := sess.AdvanceLive(sess.Watermark() + 7); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Re-execute every observed (watermark, answer) pair: answers must be
	// reproducible now that ingest is complete.
	seen := make(map[float64]int)
	for _, o := range observations {
		if prev, ok := seen[o.at]; ok {
			if prev != o.frames {
				t.Fatalf("watermark %v served both %d and %d frames", o.at, prev, o.frames)
			}
			continue
		}
		opts := QueryOptions{AtSec: o.at}
		if o.at <= 0 {
			opts.AtSec = -1
		}
		res, err := sess.QueryClass(id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Frames) != o.frames {
			t.Fatalf("watermark %v: observed %d frames live, %d on replay", o.at, o.frames, len(res.Frames))
		}
		seen[o.at] = o.frames
	}
}

// TestSessionRegistryConcurrentAccess hammers AddStream against Sessions,
// Session and Watermarks readers — the registry must be race-free now that
// a resident server registers and serves concurrently.
func TestSessionRegistryConcurrentAccess(t *testing.T) {
	sys := newTestSystem(t, liveTestConfig())
	names := []string{"auburn_c", "jacksonh", "city_a_d", "bend", "msnbc", "cnn", "sittard", "foxnews"}
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := sys.AddTable1Stream(name); err != nil {
				t.Error(err)
			}
		}(name)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = sys.Sessions()
				_ = sys.Session("auburn_c")
				_ = sys.Watermarks()
			}
		}()
	}
	wg.Wait()
	if got := len(sys.Sessions()); got != len(names) {
		t.Fatalf("registered %d sessions, want %d", got, len(names))
	}
	if _, err := sys.AddTable1Stream("auburn_c"); err == nil {
		t.Fatal("duplicate AddStream succeeded")
	}
}
