package focus

import (
	"sync"
	"testing"

	"focus/internal/plan"
	"focus/internal/video"
)

var earlyWindow = GenOptions{DurationSec: 60, SampleEvery: 1}

// earlyCorpusSpecs is the planted-rare-class corpus the early-exit
// contract is pinned on: "car" is the overwhelming head class of the one
// traffic stream (hotlot) and a deep-tail rarity in the three surveillance
// plazas. An exhaustive execution has to resolve all four streams before
// it can rank anything; an ExSample execution should discover its K
// results almost entirely inside hotlot.
func earlyCorpusSpecs() []StreamSpec {
	hot := StreamSpec{
		Name: "hotlot", Type: video.Traffic, Location: "test",
		Description: "planted-abundant stream",
		VocabSize:   40, ZipfAlpha: 2.2, ArrivalPerSec: 0.9,
		DwellMeanSec: 8, DwellJitter: 0.5, EmptyFrac: 0.25, NightFactor: 0.4,
		SpeedPxPerFrame: 2.4, PoseDriftTau: 0.6, PoseDriftAmp: 0.55,
	}
	cold := func(name string) StreamSpec {
		return StreamSpec{
			Name: name, Type: video.Traffic, Location: "test",
			Description: "planted-rare stream",
			VocabSize:   280, ZipfAlpha: 1.3, ArrivalPerSec: 0.35,
			DwellMeanSec: 10, DwellJitter: 0.5, EmptyFrac: 0.3, NightFactor: 0.4,
			SpeedPxPerFrame: 2.0, PoseDriftTau: 0.5, PoseDriftAmp: 0.5,
		}
	}
	return []StreamSpec{hot, cold("plaza_a"), cold("plaza_b"), cold("plaza_c")}
}

func newEarlySystem(t testing.TB) *System {
	t.Helper()
	sys := newTestSystem(t, liveTestConfig())
	for _, spec := range earlyCorpusSpecs() {
		if _, err := sys.AddStream(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.IngestAll(earlyWindow); err != nil {
		t.Fatal(err)
	}
	return sys
}

// The shared planted corpus for the answer-shape tests; the cost test
// builds its own fresh systems because it asserts on cold-cache GPU time.
var (
	earlySharedOnce sync.Once
	earlyShared     *System
	earlySharedErr  error
)

func sharedEarlySystem(t testing.TB) *System {
	t.Helper()
	earlySharedOnce.Do(func() {
		sys, err := New(liveTestConfig())
		if err != nil {
			earlySharedErr = err
			return
		}
		for _, spec := range earlyCorpusSpecs() {
			if _, err := sys.AddStream(spec); err != nil {
				earlySharedErr = err
				return
			}
		}
		if err := sys.IngestAll(earlyWindow); err != nil {
			earlySharedErr = err
			return
		}
		earlyShared = sys
	})
	if earlySharedErr != nil {
		t.Fatal(earlySharedErr)
	}
	return earlyShared
}

// TestEarlyExitAllResultsVerified is the half of the early-exit contract
// that never weakens: every returned item must be a GT-verified result —
// it must appear in the exhaustive exact ranking with a bit-identical
// score — the result respects the exact-mode comparator, and no more than
// TopK items come back. Only the "which K" guarantee is relaxed.
func TestEarlyExitAllResultsVerified(t *testing.T) {
	sys := sharedEarlySystem(t)

	exact, err := sys.PlanQuery("car", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full := make(map[PlanItem]bool, len(exact.Items))
	for _, it := range exact.Items {
		full[it] = true
	}

	early, err := sys.PlanQuery("car", PlanOptions{TopK: 10, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !early.Stats.EarlyExit {
		t.Error("early-exit execution did not mark Stats.EarlyExit")
	}
	if len(early.Items) == 0 {
		t.Fatal("early exit found nothing on the planted corpus")
	}
	if len(early.Items) > 10 {
		t.Fatalf("early exit returned %d items, cap 10", len(early.Items))
	}
	for i, it := range early.Items {
		if !full[it] {
			t.Errorf("item %d %+v is not in the exact ranking: unverified or wrong score", i, it)
		}
		if i > 0 && plan.RankBefore(it, early.Items[i-1]) {
			t.Errorf("items %d/%d out of rank order: %+v then %+v", i-1, i, early.Items[i-1], it)
		}
	}
}

// TestEarlyExitDeterministicPerSeed: for a fixed (plan, options, watermark
// vector) the early-exit answer is a pure function — re-running it, even
// with the GT-verdict cache now warm, must return the bit-identical item
// list. The sampler's seed derives from the canonical plan and the pinned
// vector alone.
func TestEarlyExitDeterministicPerSeed(t *testing.T) {
	sys := sharedEarlySystem(t)

	opts := PlanOptions{TopK: 10, EarlyExit: true}
	first, err := sys.PlanQuery("car", opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sys.PlanQuery("car", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Items) != len(again.Items) {
		t.Fatalf("re-run returned %d items, first run %d", len(again.Items), len(first.Items))
	}
	for i := range first.Items {
		if first.Items[i] != again.Items[i] {
			t.Fatalf("item %d: %+v != %+v", i, first.Items[i], again.Items[i])
		}
	}
	// A different TopK is a different stop condition over the same pull
	// schedule, not a different schedule: it must still return exactly
	// TopK verified items on this corpus.
	small, err := sys.PlanQuery("car", PlanOptions{TopK: 3, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Items) != 3 {
		t.Fatalf("TopK=3 early exit returned %d items", len(small.Items))
	}
}

// TestEarlyExitRequiresTopK: unbounded early exit is meaningless (there is
// nothing to stop at), and the incremental cursor has no early-exit
// variant — both must be loud compile-time errors, not silent fallbacks.
func TestEarlyExitRequiresTopK(t *testing.T) {
	sys := sharedEarlySystem(t)
	if _, err := sys.PlanQuery("car", PlanOptions{EarlyExit: true}); err == nil {
		t.Error("early exit without TopK accepted")
	}
	if _, err := sys.PlanCursor("car", PlanOptions{TopK: 5, EarlyExit: true}); err == nil {
		t.Error("early-exit plan cursor accepted")
	}
}

// TestEarlyExitCostSublinear is the other half of the contract: on the
// planted corpus, discovering 10 verified results must cost at most half
// the GPU time of the exact TopK=10 execution. Two fresh systems keep both
// measurements on cold GT-verdict caches.
//
// The pin uses a compound plan deliberately. On a single-leaf plan the
// exact executor is already near-optimal (candidates verify in descending
// index confidence, so the bound collapses after one chunk and TopK=10
// costs one chunk per candidate-bearing stream — a floor no sampler can
// beat). Under a conjunction a frame only settles once every leaf covering
// it resolves, bounds stay up across chunks, and the exact executor must
// grind all streams in parallel rounds to certify a global top 10 — while
// the sampler only needs any 10 settled frames and abandons the plazas
// after a miss or two.
func TestEarlyExitCostSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("needs two freshly ingested systems (cold verdict caches); nightly runs it")
	}
	const expr = "car & person & !bus"
	exactSys := newEarlySystem(t)
	earlySys := newEarlySystem(t)

	before := exactSys.GPUMeter()
	exact, err := exactSys.PlanQuery(expr, PlanOptions{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	exactMS := exactSys.GPUMeter().QueryMS - before.QueryMS

	before = earlySys.GPUMeter()
	early, err := earlySys.PlanQuery(expr, PlanOptions{TopK: 10, EarlyExit: true})
	if err != nil {
		t.Fatal(err)
	}
	earlyMS := earlySys.GPUMeter().QueryMS - before.QueryMS

	if len(early.Items) != 10 {
		t.Fatalf("early exit found %d items, want 10 (corpus too sparse for the cost pin)", len(early.Items))
	}
	if len(exact.Items) != 10 {
		t.Fatalf("exact TopK=10 found %d items", len(exact.Items))
	}
	if exactMS <= 0 {
		t.Fatal("exact execution consumed no GPU time; the meter is broken")
	}
	t.Logf("exact %.1f GPU-ms (%d inferences), early-exit %.1f GPU-ms (%d inferences)",
		exactMS, exact.Stats.GTInferences, earlyMS, early.Stats.GTInferences)
	if earlyMS > 0.5*exactMS {
		t.Errorf("early exit cost %.1f GPU-ms, more than half of exact's %.1f", earlyMS, exactMS)
	}
}
