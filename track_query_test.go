package focus

import (
	"sync"
	"testing"
)

// TestTrackPagedEqualsOneShot is the paging and watermark-purity contract
// for temporal queries: with ingestion racing ahead on every stream, a
// track query pinned to a watermark vector must return identical results
// one-shot, with the sequential cross-stream reference (Workers=1), and
// paged with any page size — no matter how far live ingest advances
// between pages. Run under -race this also proves track assembly and
// verification never touch unsynchronized session state.
func TestTrackPagedEqualsOneShot(t *testing.T) {
	streams := []string{"auburn_c", "jacksonh"}
	sys := newTestSystem(t, liveTestConfig())
	for _, name := range streams {
		if _, err := sys.AddTable1Stream(name); err != nil {
			t.Fatal(err)
		}
	}
	window := GenOptions{DurationSec: 45, SampleEvery: 1}
	for _, name := range streams {
		if err := sys.Session(name).StartLive(window); err != nil {
			t.Fatal(err)
		}
	}
	// Seal a prefix, pin the vector there, then let ingesters race ahead
	// while track executions run against the pinned vector. The pin is
	// deep into the window because clusters seal only after the idle
	// timeout: a watermark of 35 sees the clusters of objects that left
	// the scene in the window's first third.
	vector := make(map[string]float64, len(streams))
	for _, name := range streams {
		wm, err := sys.Session(name).AdvanceLive(35)
		if err != nil {
			t.Fatal(err)
		}
		vector[name] = wm
	}

	var wg sync.WaitGroup
	wg.Add(len(streams))
	for _, name := range streams {
		go func(name string) {
			defer wg.Done()
			sess := sys.Session(name)
			for to := 37.0; to <= window.DurationSec+5; to += 3 {
				if _, err := sess.AdvanceLive(to); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
	}

	const expr = "car & dur(1)"
	opts := TrackOptions{TopK: 10, AtWatermarks: vector, StepClusters: 1}
	oneShot, err := sys.TrackQuery(expr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(oneShot.Items) == 0 {
		t.Fatal("pinned track query matched nothing; the fixture should produce car tracks")
	}
	seqOpts := opts
	seqOpts.Workers = 1
	seq, err := sys.TrackQuery(expr, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Items) != len(oneShot.Items) {
		t.Fatalf("sequential fan-out returned %d items, parallel %d", len(seq.Items), len(oneShot.Items))
	}
	for i := range seq.Items {
		if seq.Items[i] != oneShot.Items[i] {
			t.Fatalf("item %d: sequential %+v != parallel %+v", i, seq.Items[i], oneShot.Items[i])
		}
	}
	for _, pageSize := range []int{1, 3} {
		cur, err := sys.TrackCursor(expr, opts)
		if err != nil {
			t.Fatal(err)
		}
		var paged []TrackItem
		for !cur.Done() {
			page, err := cur.Next(pageSize)
			if err != nil {
				t.Fatal(err)
			}
			if len(page) == 0 && !cur.Done() {
				t.Fatal("empty page before exhaustion")
			}
			paged = append(paged, page...)
		}
		if len(paged) != len(oneShot.Items) {
			t.Fatalf("pageSize=%d: paged %d items, one-shot %d", pageSize, len(paged), len(oneShot.Items))
		}
		for i := range paged {
			if paged[i] != oneShot.Items[i] {
				t.Fatalf("pageSize=%d item %d under live ingest: paged %+v != one-shot %+v",
					pageSize, i, paged[i], oneShot.Items[i])
			}
		}
	}
	wg.Wait()
	for _, name := range streams {
		sys.Session(name).StopLive()
	}

	// The pinned answer must survive ingestion having finished: tracks are
	// a pure function of the watermark vector.
	final, err := sys.TrackQuery(expr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Items) != len(oneShot.Items) {
		t.Fatalf("post-ingest re-run %d items, pinned run %d", len(final.Items), len(oneShot.Items))
	}
	for i := range final.Items {
		if final.Items[i] != oneShot.Items[i] {
			t.Fatalf("post-ingest item %d: %+v != %+v", i, final.Items[i], oneShot.Items[i])
		}
	}
}

// TestTrackQueryRejectsBoolean pins the dispatch contract from the other
// side: purely boolean expressions belong on PlanQuery, temporal ones on
// TrackQuery, and each path rejects the other's with a pointed error.
func TestTrackQueryRejectsBoolean(t *testing.T) {
	sys := sharedPlanSystem(t)
	if _, err := sys.TrackQuery("car & !bus", TrackOptions{}); err == nil {
		t.Error("TrackQuery accepted a purely boolean expression")
	}
	if _, err := sys.PlanQuery("car & dur(30)", PlanOptions{}); err == nil {
		t.Error("PlanQuery accepted a temporal expression")
	}
}

// TestTrackQueryCostsOneVerdictPerCluster carries the §6.7 cost contract
// to the track path at the system level: a compound temporal plan pays at
// most one GT-CNN inference per distinct dominant cluster — pinned via
// GPU-meter deltas — and re-running it costs zero new GPU operations.
func TestTrackQueryCostsOneVerdictPerCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a freshly ingested system (cold verdict cache); nightly runs it")
	}
	sys := newPlanSystem(t, "auburn_c")

	before := sys.GPUMeter()
	res, err := sys.TrackQuery("car & !bus & dur(1)", TrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := sys.GPUMeter()

	unique := 0
	for _, ss := range res.Stats.PerStream {
		unique += ss.VerifiedClusters
	}
	delta := after.QueryOps - before.QueryOps
	if delta != int64(res.Stats.GTInferences) {
		t.Errorf("meter query ops delta %d != track GTInferences %d", delta, res.Stats.GTInferences)
	}
	if delta > int64(unique) {
		t.Errorf("meter query ops delta %d exceeds distinct verified clusters %d: some cluster was verified twice", delta, unique)
	}

	again, err := sys.TrackQuery("car & !bus & dur(1)", TrackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.GPUMeter().QueryOps != after.QueryOps {
		t.Errorf("re-running the track query paid %d new GPU ops, want 0",
			sys.GPUMeter().QueryOps-after.QueryOps)
	}
	if len(again.Items) != len(res.Items) {
		t.Fatalf("re-run returned %d items, first run %d", len(again.Items), len(res.Items))
	}
	for i := range again.Items {
		if again.Items[i] != res.Items[i] {
			t.Fatalf("re-run item %d: %+v != %+v", i, again.Items[i], res.Items[i])
		}
	}
}
